"""Tests for the memory hierarchy and DMA model (repro.hw.memory)."""

import pytest

from repro.hw.memory import DmaModel, MemoryHierarchy, MemoryLevel, VEGA_MEMORY


class TestMemoryLevel:
    def test_fits(self):
        l1 = MemoryLevel("L1", 1024)
        assert l1.fits(1024)
        assert not l1.fits(1025)
        assert not l1.fits(-1)


class TestDma:
    def test_zero_bytes_free(self):
        assert DmaModel().cycles(0) == 0.0

    def test_setup_plus_stream(self):
        dma = DmaModel(bandwidth_bytes_per_cycle=8, setup_cycles=40)
        assert dma.cycles(800) == 40 + 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DmaModel().cycles(-1)

    def test_multi_transfer_pays_setup_per_burst(self):
        dma = DmaModel(bandwidth_bytes_per_cycle=8, setup_cycles=40)
        one = dma.cycles_multi(800, 1)
        two = dma.cycles_multi(800, 2)
        assert two == one + 40

    def test_multi_rejects_zero(self):
        with pytest.raises(ValueError):
            DmaModel().cycles_multi(100, 0)

    def test_interleaved_layout_saves_one_setup(self):
        """Sec. 4.4 item 3: weights+indices in one DMA transaction."""
        dma = VEGA_MEMORY.dma
        weights, indices = 4096, 512
        split = dma.cycles_multi(weights + indices, 2)
        interleaved = dma.cycles_multi(weights + indices, 1)
        assert split - interleaved == dma.setup_cycles


class TestVegaHierarchy:
    def test_paper_capacities(self):
        """Sec. 2.2: 128 kB L1, 1.6 MB L2, 16 MB L3."""
        assert VEGA_MEMORY.l1.size_bytes == 128 * 1024
        assert VEGA_MEMORY.l2.size_bytes == 1600 * 1024
        assert VEGA_MEMORY.l3.size_bytes == 16 * 1024 * 1024

    def test_level_lookup(self):
        assert VEGA_MEMORY.level("L1") is VEGA_MEMORY.l1
        with pytest.raises(KeyError):
            VEGA_MEMORY.level("L4")

    def test_latency_ordering(self):
        assert (
            VEGA_MEMORY.l1.load_latency
            < VEGA_MEMORY.l2.load_latency
            < VEGA_MEMORY.l3.load_latency
        )
