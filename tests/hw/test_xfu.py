"""Tests for the xDecimate XFU behavioural model (repro.hw.xfu).

These encode the Sec. 4.3 datapath equations directly."""

import numpy as np
import pytest

from repro.hw.xfu import XDecimateUnit


def flat_mem(size=4096):
    mem = np.arange(size, dtype=np.uint32) & 0xFF
    return lambda addr: int(mem[addr])


class TestOffsetDecode:
    def test_nibble_selector_m8(self):
        """o = rs2[(csr[2:0]*4+3):(csr[2:0]*4)] for M=8."""
        xfu = XDecimateUnit()
        rs2 = 0x76543210
        for i in range(8):
            xfu.csr = i
            assert xfu.offset_field(rs2, 8) == i

    def test_nibble_selector_wraps_at_8(self):
        xfu = XDecimateUnit(csr=8)
        assert xfu.offset_field(0x76543210, 16) == 0

    def test_crumb_selector_m4(self):
        """1:4 uses csr[3:0] over 16 2-bit fields."""
        xfu = XDecimateUnit()
        rs2 = int("".join(f"{i % 4:02b}" for i in reversed(range(16))), 2)
        for i in range(16):
            xfu.csr = i
            assert xfu.offset_field(rs2, 4) == i % 4

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            XDecimateUnit().offset_field(0, 5)


class TestAddressing:
    def test_block_index_shared_by_pairs(self):
        """csr[15:1]: consecutive executions address the same M-block."""
        xfu = XDecimateUnit()
        seen = []
        for i in range(8):
            xfu.csr = i
            seen.append(xfu.block_index())
        assert seen == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_index_is_15_bits(self):
        xfu = XDecimateUnit(csr=(1 << 16) | 2)
        assert xfu.block_index() == ((1 << 16 | 2) >> 1) & 0x7FFF

    def test_address_formula(self):
        """addr = rs1 + M*csr[15:1] + o."""
        xfu = XDecimateUnit(csr=4, record_trace=True)  # block 2, lane 2
        got = xfu.execute(0, 100, 0x00000500, 16, flat_mem())
        # rs2 nibble csr[2:0]=4 is 0, so addr = 100 + 16*2 + 0 = 132;
        # the byte lands in lane csr[2:1] = 2.
        assert xfu.trace[0].address == 132
        assert (got >> 16) & 0xFF == 132 & 0xFF


class TestWriteBack:
    def test_lane_selection(self):
        """rd[(csr[2:1]*8+7):(csr[2:1]*8)] <- MEM[addr]."""
        xfu = XDecimateUnit()
        rd = 0
        load = flat_mem()
        # csr 0,1 -> lane 0; csr 2,3 -> lane 1; etc.
        rd = xfu.execute(rd, 0, 0x0, 8, load)  # csr0: mem[0]=0 lane0
        rd = xfu.execute(rd, 0, 0x0, 8, load)  # csr1: mem[0]=0 lane0
        rd = xfu.execute(rd, 1, 0x0, 8, load)  # csr2: mem[1+8]=9 lane1
        assert (rd >> 8) & 0xFF == 9

    def test_merge_preserves_other_lanes(self):
        xfu = XDecimateUnit(csr=2)  # lane 1
        rd = 0xAABBCCDD
        out = xfu.execute(rd, 0, 0, 8, lambda a: 0x11)
        assert out == 0xAABB11DD

    def test_csr_autoincrement(self):
        xfu = XDecimateUnit()
        xfu.execute(0, 0, 0, 8, lambda a: 0)
        xfu.execute(0, 0, 0, 8, lambda a: 0)
        assert xfu.csr == 2

    def test_clear(self):
        xfu = XDecimateUnit(csr=77)
        xfu.clear()
        assert xfu.csr == 0


class TestTrace:
    def test_trace_records_datapath(self):
        xfu = XDecimateUnit(record_trace=True)
        xfu.execute(0, 64, 0x3, 8, flat_mem())
        (entry,) = xfu.trace
        assert entry.csr_before == 0
        assert entry.offset == 3
        assert entry.block_index == 0
        assert entry.address == 67
        assert entry.lane == 0
        assert entry.byte == 67 & 0xFF

    def test_trace_disabled_by_default(self):
        xfu = XDecimateUnit()
        xfu.execute(0, 0, 0, 8, lambda a: 0)
        assert xfu.trace == []


class TestDuplicatedOffsetContract:
    def test_conv_pairing_reads_same_block_two_buffers(self):
        """With duplicated offsets, calls alternating two base addresses
        fetch the same relative element from both buffers (Sec. 4.1.3)."""
        mem = np.zeros(256, dtype=np.uint8)
        mem[0:64] = np.arange(64)  # buffer 1
        mem[128:192] = np.arange(64) + 100  # buffer 2
        load = lambda a: int(mem[a])
        xfu = XDecimateUnit()
        # offsets duplicated: o0=5, o0=5, o1=2, o1=2 (nibbles)
        rs2 = 0x2255
        b1 = xfu.execute(0, 0, rs2, 8, load)  # buf1 block0 off5
        b2 = xfu.execute(0, 128, rs2, 8, load)  # buf2 block0 off5
        assert b1 & 0xFF == 5
        assert b2 & 0xFF == 105
        b1 = xfu.execute(b1, 0, rs2, 8, load)  # buf1 block1 off2 lane1
        b2 = xfu.execute(b2, 128, rs2, 8, load)
        assert (b1 >> 8) & 0xFF == 10
        assert (b2 >> 8) & 0xFF == 110
