"""Tests for the cluster parallelisation model (repro.hw.cluster)."""

import pytest

from repro.hw.cluster import ClusterConfig, VEGA_CLUSTER


class TestSplit:
    def test_even_split(self):
        assert VEGA_CLUSTER.split(64) == 8

    def test_uneven_split_ceils(self):
        assert VEGA_CLUSTER.split(65) == 9

    def test_fewer_items_than_cores(self):
        assert VEGA_CLUSTER.split(3) == 1

    def test_zero(self):
        assert VEGA_CLUSTER.split(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VEGA_CLUSTER.split(-1)


class TestSpan:
    def test_span_includes_barrier(self):
        c = ClusterConfig(n_cores=4, barrier_cycles=10)
        assert c.span_cycles(8, 100.0) == 2 * 100 + 10

    def test_span_dominated_by_slowest_core(self):
        c = ClusterConfig(n_cores=8, barrier_cycles=0)
        assert c.span_cycles(9, 50.0) == 2 * 50


class TestEfficiency:
    def test_perfect_balance(self):
        assert VEGA_CLUSTER.efficiency(64) == 1.0

    def test_imbalance_penalty(self):
        # 9 items on 8 cores: makespan 2, utilisation 9/16
        assert VEGA_CLUSTER.efficiency(9) == pytest.approx(9 / 16)

    def test_empty(self):
        assert VEGA_CLUSTER.efficiency(0) == 1.0

    def test_nm_uniformity_claim(self):
        """Equally sized N:M tensor portions need equal work (Sec. 2.1),
        so OX*OY grids that divide evenly reach efficiency 1."""
        for grid in (8 * 8, 16 * 16, 32 * 32):
            assert VEGA_CLUSTER.efficiency(grid // 2) == 1.0


def test_vega_has_8_cores():
    assert VEGA_CLUSTER.n_cores == 8
