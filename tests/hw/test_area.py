"""Tests for the area ledger (repro.hw.area)."""

import pytest

from repro.hw.area import (
    AreaModel,
    RI5CY_NO_FPU_KGE,
    RI5CY_WITH_FPU_KGE,
    SSSR_MAX_KGE,
    XDECIMATE_OVERHEAD,
    sssr_core,
    xdecimate_core,
)


class TestAreaModel:
    def test_total(self):
        m = AreaModel()
        m.add("core", 70.0)
        m.add("xfu", 3.5)
        assert m.total() == pytest.approx(73.5)

    def test_overhead(self):
        m = AreaModel()
        m.add("core", 100.0)
        m.add("ext", 5.0)
        assert m.overhead_vs(100.0) == pytest.approx(0.05)

    def test_duplicate_rejected(self):
        m = AreaModel()
        m.add("core", 1.0)
        with pytest.raises(ValueError):
            m.add("core", 2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().add("x", -1.0)

    def test_bad_baseline_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().overhead_vs(0.0)


class TestPaperNumbers:
    def test_xdecimate_is_5_percent(self):
        """Sec. 4.3 / Table 3: the XFU costs 5.0% of the core."""
        assert xdecimate_core().overhead == pytest.approx(0.05)

    def test_sssr_is_44_percent(self):
        """Sec. 3 / Table 3: SSSR costs up to 44% of an FPU-less core."""
        assert sssr_core().overhead == pytest.approx(0.44)

    def test_sssr_vs_fpu_core_20_to_31_percent(self):
        """Scheffler et al.: 20-31 kGE = 20-31% of the 102 kGE core."""
        assert SSSR_MAX_KGE / RI5CY_WITH_FPU_KGE == pytest.approx(0.304, abs=0.01)

    def test_ledger_consistency(self):
        """The implied FPU-less core must be smaller than the FPU one."""
        assert RI5CY_NO_FPU_KGE < RI5CY_WITH_FPU_KGE

    def test_xdecimate_much_cheaper_than_sssr(self):
        """The headline HW claim: ~9x less area than SSSR."""
        ratio = sssr_core().extension_kge / xdecimate_core().extension_kge
        assert ratio > 8

    def test_overhead_constant_matches(self):
        assert XDECIMATE_OVERHEAD == 0.05
