"""Property-based tests on the xDecimate XFU datapath."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.xfu import XDecimateUnit


@settings(max_examples=60)
@given(
    csr=st.integers(0, (1 << 16) - 1),
    rs1=st.integers(0, 1 << 20),
    rs2=st.integers(0, (1 << 32) - 1),
    m=st.sampled_from([4, 8, 16]),
)
def test_address_formula_property(csr, rs1, rs2, m):
    """addr = rs1 + M*csr[15:1] + o, with o the csr-selected field."""
    xfu = XDecimateUnit(csr=csr, record_trace=True)
    seen = {}

    def load(addr):
        seen["addr"] = addr
        return 0xAB

    xfu.execute(0, rs1, rs2, m, load)
    if m == 4:
        o = (rs2 >> ((csr & 0xF) * 2)) & 0x3
    else:
        o = (rs2 >> ((csr & 0x7) * 4)) & 0xF
    expected = (rs1 + m * ((csr >> 1) & 0x7FFF) + o) & 0xFFFFFFFF
    assert seen["addr"] == expected
    assert xfu.csr == (csr + 1) & 0xFFFFFFFF


@settings(max_examples=40)
@given(
    rd=st.integers(0, (1 << 32) - 1),
    csr=st.integers(0, 255),
    byte=st.integers(0, 255),
)
def test_writeback_merges_single_lane(rd, csr, byte):
    """Exactly one byte lane of rd changes; the rest are preserved."""
    xfu = XDecimateUnit(csr=csr)
    out = xfu.execute(rd, 0, 0, 8, lambda a: byte)
    lane = (csr >> 1) & 0x3
    for i in range(4):
        got = (out >> (8 * i)) & 0xFF
        want = byte if i == lane else (rd >> (8 * i)) & 0xFF
        assert got == want


@settings(max_examples=20)
@given(
    offsets=st.lists(st.integers(0, 7), min_size=4, max_size=4),
    base=st.integers(0, 64),
)
def test_duplicated_offsets_pair_blocks(offsets, base):
    """With duplicated offsets, call pairs (2i, 2i+1) decode the same
    offset and block — the contract the conv ISA kernel relies on."""
    rs2 = 0
    for i, o in enumerate(offsets):
        rs2 |= o << (8 * i)
        rs2 |= o << (8 * i + 4)
    xfu = XDecimateUnit(record_trace=True)
    for _ in range(8):
        xfu.execute(0, base, rs2, 8, lambda a: 0)
    trace = xfu.trace
    for i in range(4):
        a, b = trace[2 * i], trace[2 * i + 1]
        assert a.offset == b.offset == offsets[i]
        assert a.block_index == b.block_index == i


def test_exhaustive_csr_sweep_one_word():
    """All 16 fields of a 1:4 word decode in order over 16 calls."""
    rs2 = int.from_bytes(
        bytes(
            (0b11100100,) * 4  # crumbs 0,1,2,3 repeated
        ),
        "little",
    )
    xfu = XDecimateUnit(record_trace=True)
    for _ in range(16):
        xfu.execute(0, 0, rs2, 4, lambda a: 0)
    decoded = [e.offset for e in xfu.trace]
    assert decoded == [0, 1, 2, 3] * 4
