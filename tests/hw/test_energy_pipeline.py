"""Tests for the energy model and double-buffering timeline
(repro.hw.energy / repro.hw.pipeline)."""

import pytest

from repro.hw.energy import EnergyParams, conv_layer_energy, fc_layer_energy
from repro.hw.memory import DmaModel
from repro.hw.pipeline import double_buffered_cycles, serialized_cycles
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8

SHAPE = ConvShape(iy=8, ix=8, c=64, k=128)


class TestEnergyParams:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyParams(instruction_pj=-1)

    def test_l2_costlier_than_l1(self):
        p = EnergyParams()
        assert p.l2_byte_pj > p.l1_access_pj


class TestConvEnergy:
    def test_breakdown_positive(self):
        e = conv_layer_energy(SHAPE, "dense-4x2")
        assert e.core > 0 and e.l1 > 0 and e.l2 > 0 and e.background > 0
        assert e.total_pj == pytest.approx(e.core + e.l1 + e.l2 + e.background)
        assert e.total_uj == pytest.approx(e.total_pj / 1e6)

    def test_pj_per_mac_in_plausible_range(self):
        """Vega-class efficiency: order of 1 pJ per 8-bit MAC."""
        e = conv_layer_energy(SHAPE, "dense-4x2")
        assert 0.2 < e.pj_per_mac < 10

    def test_high_sparsity_saves_energy(self):
        dense = conv_layer_energy(SHAPE, "dense-4x2")
        for fmt in (FORMAT_1_8, FORMAT_1_16):
            sparse = conv_layer_energy(SHAPE, "sparse-isa", fmt)
            assert sparse.total_pj < dense.total_pj

    def test_energy_monotone_in_sparsity(self):
        sw = [
            conv_layer_energy(SHAPE, "sparse-sw", f).total_pj
            for f in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)
        ]
        assert sw == sorted(sw, reverse=True)

    def test_l2_energy_tracks_weight_stream(self):
        """The paper's expectation: savings also come from reduced
        memory traffic, not only from skipped compute."""
        dense = conv_layer_energy(SHAPE, "dense-1x2")
        sparse = conv_layer_energy(SHAPE, "sparse-sw", FORMAT_1_16)
        assert sparse.l2 < dense.l2 / 2

    def test_isa_saves_core_energy_vs_sw(self):
        sw = conv_layer_energy(SHAPE, "sparse-sw", FORMAT_1_8)
        isa = conv_layer_energy(SHAPE, "sparse-isa", FORMAT_1_8)
        assert isa.core < sw.core


class TestFcEnergy:
    def test_tokens_scale(self):
        one = fc_layer_energy(FcShape(c=256, k=64), "dense")
        ten = fc_layer_energy(FcShape(c=256, k=64, tokens=10), "dense")
        assert ten.total_pj == pytest.approx(10 * one.total_pj)

    def test_sparse_saves(self):
        dense = fc_layer_energy(FcShape(c=1024, k=256), "dense")
        sparse = fc_layer_energy(FcShape(c=1024, k=256), "sparse-isa", FORMAT_1_16)
        assert sparse.total_pj < dense.total_pj


class TestPipeline:
    DMA = DmaModel(bandwidth_bytes_per_cycle=8, setup_cycles=0)

    def test_fully_hidden_when_compute_dominates(self):
        tl = double_buffered_cycles([1000.0] * 4, [80.0] * 4, self.DMA)
        # Only the first tile's 10-cycle transfer is exposed.
        assert tl.total_cycles == pytest.approx(4000 + 10)
        assert tl.hiding_efficiency > 0.7

    def test_transfer_bound_when_stream_dominates(self):
        tl = double_buffered_cycles([10.0] * 4, [8000.0] * 4, self.DMA)
        assert tl.total_cycles == pytest.approx(4 * 1000 + 10, rel=0.01)

    def test_serialized_is_sum(self):
        tl = serialized_cycles([100.0, 100.0], [80.0, 80.0], self.DMA)
        assert tl.total_cycles == pytest.approx(200 + 20)
        assert tl.hiding_efficiency == 0.0

    def test_double_buffer_never_slower(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(10):
            comp = list(rng.uniform(10, 1000, 5))
            byts = list(rng.uniform(10, 5000, 5))
            db = double_buffered_cycles(comp, byts, self.DMA)
            ser = serialized_cycles(comp, byts, self.DMA)
            assert db.total_cycles <= ser.total_cycles + 1e-9

    def test_empty_schedule(self):
        tl = double_buffered_cycles([], [], self.DMA)
        assert tl.total_cycles == 0.0
        assert tl.hiding_efficiency == 1.0

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            double_buffered_cycles([1.0], [], self.DMA)
        with pytest.raises(ValueError):
            serialized_cycles([1.0], [], self.DMA)
