"""Tests for the core interpreter (repro.hw.cpu)."""

import numpy as np
import pytest

from repro.hw.cpu import Core, PipelineModel
from repro.hw.isa import Asm, Instr


def make_core(mem_size=4096, **pipe):
    mem = np.zeros(mem_size, dtype=np.uint8)
    return Core(mem, pipeline=PipelineModel(**pipe) if pipe else None)


def run(asm: Asm, core: Core | None = None):
    core = core or make_core()
    stats = core.run(asm.build())
    return core, stats


class TestAlu:
    def test_li_mv_add(self):
        a = Asm()
        a.li(1, 5)
        a.li(2, 7)
        a.add(3, 1, 2)
        a.mv(4, 3)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 12 and core.regs[4] == 12

    def test_sub_wraps_32bit(self):
        a = Asm()
        a.li(1, 0)
        a.li(2, 1)
        a.sub(3, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 0xFFFFFFFF

    def test_logic_ops(self):
        a = Asm()
        a.li(1, 0b1100)
        a.li(2, 0b1010)
        a.and_(3, 1, 2)
        a.or_(4, 1, 2)
        a.xor(5, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 0b1000
        assert core.regs[4] == 0b1110
        assert core.regs[5] == 0b0110

    def test_shifts(self):
        a = Asm()
        a.li(1, 0x80000000)
        a.srli(2, 1, 4)
        a.srai(3, 1, 4)
        a.li(4, 1)
        a.slli(5, 4, 31)
        a.halt()
        core, _ = run(a)
        assert core.regs[2] == 0x08000000
        assert core.regs[3] == 0xF8000000
        assert core.regs[5] == 0x80000000

    def test_reg_reg_shifts(self):
        a = Asm()
        a.li(1, 0xF0)
        a.li(2, 4)
        a.srl(3, 1, 2)
        a.sll(4, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 0xF
        assert core.regs[4] == 0xF00

    def test_x0_hardwired_zero(self):
        a = Asm()
        a.li(0, 99)
        a.addi(1, 0, 3)
        a.halt()
        core, _ = run(a)
        assert core.regs[0] == 0 and core.regs[1] == 3

    def test_mul(self):
        a = Asm()
        a.li(1, 1000)
        a.li(2, 1000)
        a.mul(3, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 1_000_000


class TestMemoryOps:
    def test_word_roundtrip_little_endian(self):
        core = make_core()
        a = Asm()
        a.li(1, 0x12345678)
        a.li(2, 100)
        a.sw(1, 2, 0)
        a.lw(3, 2, 0)
        a.lbu(4, 2, 0)
        a.halt()
        core.run(a.build())
        assert core.regs[3] == 0x12345678
        assert core.regs[4] == 0x78  # LSB first

    def test_lb_sign_extends(self):
        core = make_core()
        core.mem[50] = 0x80
        a = Asm()
        a.li(1, 50)
        a.lb(2, 1, 0)
        a.lbu(3, 1, 0)
        a.halt()
        core.run(a.build())
        assert core.regs[2] == 0xFFFFFF80
        assert core.regs[3] == 0x80

    def test_post_increment(self):
        core = make_core()
        core.mem[0:8] = range(8)
        a = Asm()
        a.li(1, 0)
        a.lw(2, 1, post=4)
        a.lw(3, 1, post=4)
        a.halt()
        core.run(a.build())
        assert core.regs[1] == 8
        assert core.regs[2] == 0x03020100
        assert core.regs[3] == 0x07060504

    def test_lbu_rr_indexed(self):
        core = make_core()
        core.mem[70] = 42
        a = Asm()
        a.li(1, 64)
        a.li(2, 6)
        a.lbu_rr(3, 1, 2)
        a.halt()
        core.run(a.build())
        assert core.regs[3] == 42

    def test_lbu_ins_lane_merge(self):
        core = make_core()
        core.mem[10] = 0xAB
        a = Asm()
        a.li(1, 10)
        a.li(2, 0)
        a.li(3, 0x11223344)
        a.lbu_ins(3, 1, 2, (0 << 2) | 2)  # disp 0, lane 2
        a.halt()
        core.run(a.build())
        assert core.regs[3] == 0x11AB3344

    def test_sb(self):
        core = make_core()
        a = Asm()
        a.li(1, 0x1FF)
        a.li(2, 20)
        a.sb(1, 2, 0)
        a.halt()
        core.run(a.build())
        assert core.mem[20] == 0xFF


class TestSimd:
    def test_sdotp_signed_lanes(self):
        a = Asm()
        # lanes: 1, -1, 127, -128 times 2, 3, 1, 1
        a.li(1, (0x01 | (0xFF << 8) | (0x7F << 16) | (0x80 << 24)))
        a.li(2, (0x02 | (0x03 << 8) | (0x01 << 16) | (0x01 << 24)))
        a.li(3, 10)
        a.sdotp(3, 1, 2)
        a.halt()
        core, _ = run(a)
        expected = 10 + (1 * 2 + (-1) * 3 + 127 * 1 + (-128) * 1)
        assert core.regs[3] == expected & 0xFFFFFFFF

    def test_sdotp_accumulates(self):
        a = Asm()
        a.li(1, 0x01010101)
        a.li(2, 0x01010101)
        a.li(3, 0)
        a.sdotp(3, 1, 2)
        a.sdotp(3, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 8

    def test_sdotup_unsigned(self):
        a = Asm()
        a.li(1, 0xFF)
        a.li(2, 0x02)
        a.li(3, 0)
        a.sdotup(3, 1, 2)
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 510


class TestControlFlow:
    def test_branch_loop(self):
        a = Asm()
        a.li(1, 0)
        a.li(2, 10)
        a.label("loop")
        a.addi(1, 1, 1)
        a.blt(1, 2, "loop")
        a.halt()
        core, stats = run(a)
        assert core.regs[1] == 10
        # 9 taken branches pay the penalty
        assert stats.stalls == 9 * PipelineModel().taken_branch_penalty

    def test_beq_bne_bge(self):
        a = Asm()
        a.li(1, 5)
        a.li(2, 5)
        a.beq(1, 2, "eq")
        a.li(3, 111)  # skipped
        a.label("eq")
        a.bne(1, 2, "never")
        a.bge(1, 2, "ge")
        a.li(4, 222)  # skipped
        a.label("ge")
        a.li(5, 1)
        a.label("never")
        a.halt()
        core, _ = run(a)
        assert core.regs[3] == 0 and core.regs[4] == 0 and core.regs[5] == 1

    def test_hwloop_zero_overhead(self):
        a = Asm()
        a.li(1, 0)
        a.lp_setup(5, "end")
        a.addi(1, 1, 2)
        a.label("end")
        a.halt()
        core, stats = run(a)
        assert core.regs[1] == 10
        assert stats.stalls == 0  # no branch penalty in hardware loops

    def test_hwloop_zero_trip_skips_body(self):
        a = Asm()
        a.li(1, 7)
        a.lp_setup(0, "end")
        a.li(1, 999)
        a.label("end")
        a.halt()
        core, _ = run(a)
        assert core.regs[1] == 7

    def test_nested_hwloops(self):
        a = Asm()
        a.li(1, 0)
        a.lp_setup(3, "outer")
        a.lp_setup(4, "inner")
        a.addi(1, 1, 1)
        a.label("inner")
        a.label("outer")
        a.halt()
        core, _ = run(a)
        assert core.regs[1] == 12

    def test_runaway_guard(self):
        a = Asm()
        a.label("spin")
        a.j("spin")
        prog = a.build()
        with pytest.raises(RuntimeError, match="exceeded"):
            make_core().run(prog, max_steps=100)


class TestHazards:
    def test_load_use_stall(self):
        core = make_core()
        a = Asm()
        a.li(1, 0)
        a.lw(2, 1, 0)
        a.addi(3, 2, 1)  # consumes the load result immediately
        a.halt()
        _, stats = (core, core.run(a.build()))
        assert stats.stalls == 1

    def test_no_stall_with_gap(self):
        core = make_core()
        a = Asm()
        a.li(1, 0)
        a.lw(2, 1, 0)
        a.li(4, 9)  # filler
        a.addi(3, 2, 1)
        a.halt()
        stats = core.run(a.build())
        assert stats.stalls == 0

    def test_consecutive_xdec_no_stall(self):
        """Sec. 4.3: the XFU forwards rd between consecutive xDecimate."""
        core = make_core()
        a = Asm()
        a.li(1, 0)
        a.li(2, 0)
        a.xdec(3, 1, 2, 8)
        a.xdec(3, 1, 2, 8)
        a.xdec(3, 1, 2, 8)
        a.halt()
        stats = core.run(a.build())
        assert stats.stalls == 0

    def test_xdec_then_alu_stalls(self):
        """xDecimate is a load: a dependent ALU op right after stalls."""
        core = make_core()
        a = Asm()
        a.li(1, 0)
        a.li(2, 0)
        a.xdec(3, 1, 2, 8)
        a.addi(4, 3, 0)
        a.halt()
        stats = core.run(a.build())
        assert stats.stalls == 1


class TestStats:
    def test_macs_counted(self):
        a = Asm()
        a.li(1, 0)
        a.li(2, 0)
        a.li(3, 0)
        a.sdotp(3, 1, 2)
        a.sdotp(3, 1, 2)
        a.halt()
        _, stats = run(a)
        assert stats.macs == 8
        assert stats.op_counts["sdotp"] == 2

    def test_cycles_is_instr_plus_stalls(self):
        core = make_core()
        a = Asm()
        a.li(1, 0)
        a.lw(2, 1, 0)
        a.addi(3, 2, 1)
        a.halt()
        stats = core.run(a.build())
        assert stats.cycles == stats.instructions + stats.stalls


class TestValidation:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instr("frobnicate")

    def test_undefined_label_rejected(self):
        a = Asm()
        a.j("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            a.build()

    def test_duplicate_label_rejected(self):
        a = Asm()
        a.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            a.label("x")

    def test_memory_must_be_uint8(self):
        with pytest.raises(ValueError):
            Core(np.zeros(16, dtype=np.int32))
