"""Execution backends in the plan compiler (backend= knob).

Tentpole contracts:

- int8 sparse plans of **every** backend knob (sw / isa / auto) are
  bit-identical to the dense plan — layerwise and end-to-end, on the
  pruned paper models (ResNet18 / ViT);
- ``"auto"`` records per-layer backend choices that match the cost
  model's cycle ranking (:func:`repro.kernels.backend.select_backend`);
- backend knobs never share an engine plan-cache slot;
- ``accum_dtype="float64"`` tightens the float gather contract and
  caches separately.
"""

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.engine import InferenceEngine, compile_plan
from repro.engine.bench import (
    FLOAT_SPARSE_REL_TOL,
    autotune_k_chunk,
    measure_sparse_throughput,
    resnet_style_graph,
)
from repro.kernels.backend import select_backend
from repro.models.quantize import quantize_graph
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.sparsity.nm import FORMAT_1_8, SUPPORTED_FORMATS
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights

KNOBS = ("sw", "isa", "auto")


def quantized(graph, shape, seed=0, n=3):
    rng = np.random.default_rng(seed)
    calib = [(rng.normal(size=shape) * 0.5).astype(np.float32) for _ in range(n)]
    quantize_graph(graph, calib)
    return graph


@pytest.fixture(scope="module")
def pruned_demo():
    return quantized(resnet_style_graph(fmt=FORMAT_1_8), (12, 12, 3))


@pytest.fixture(scope="module")
def pruned_models():
    """Pruned + quantised paper models (the acceptance-bar graphs)."""
    models = {}
    for name, graph, shape in [
        (
            "resnet",
            resnet18_cifar(num_classes=10, fmt=FORMAT_1_8, seed=0),
            (32, 32, 3),
        ),
        ("vit", vit_small(fmt=FORMAT_1_8, seed=0, depth=1), (224, 224, 3)),
    ]:
        models[name] = (quantized(graph, shape), shape)
    return models


class TestBitIdenticalAcrossBackends:
    @pytest.mark.parametrize("model", ["resnet", "vit"])
    def test_isa_and_auto_match_dense_on_paper_models(
        self, pruned_models, model
    ):
        graph, shape = pruned_models[model]
        rng = np.random.default_rng(7)
        xs = (rng.normal(size=(2, *shape)) * 0.5).astype(np.float32)
        engine = InferenceEngine()
        dense_out, dense_acts = engine.run_batch(
            graph, xs, mode="int8", return_acts=True
        )
        for knob in ("isa", "auto"):
            out, acts = engine.run_batch(
                graph,
                xs,
                mode="int8",
                sparse=True,
                backend=knob,
                return_acts=True,
            )
            plan = engine.compile(graph, "int8", sparse=True, backend=knob)
            assert any(
                c.backend == "sparse-isa"
                for c in plan.kernel_choices.values()
            ), f"{model}/{knob}: no layer bound to the ISA backend"
            for name in dense_acts:
                assert np.array_equal(
                    dense_acts[name], acts[name]
                ), f"{model}/{knob}: layer {name} diverged"
            assert np.array_equal(out, dense_out)

    @pytest.mark.parametrize("fmt_name", list(SUPPORTED_FORMATS))
    @pytest.mark.parametrize("knob", KNOBS)
    def test_demo_graph_all_formats(self, fmt_name, knob):
        fmt = SUPPORTED_FORMATS[fmt_name]
        g = quantized(resnet_style_graph(fmt=fmt), (12, 12, 3), seed=1)
        xs = np.random.default_rng(4).normal(size=(5, 12, 12, 3)).astype(np.float32)
        engine = InferenceEngine()
        dense = engine.run_batch(g, xs, mode="int8")
        out = engine.run_batch(g, xs, mode="int8", sparse=True, backend=knob)
        assert np.array_equal(dense, out), f"{fmt_name}/{knob}"

    def test_float_isa_within_tolerance(self, pruned_demo):
        xs = np.random.default_rng(5).normal(size=(3, 12, 12, 3)).astype(np.float32)
        engine = InferenceEngine()
        dense = engine.run_batch(pruned_demo, xs, mode="float")
        out = engine.run_batch(
            pruned_demo, xs, mode="float", sparse=True, backend="isa"
        )
        dev = np.abs(out - dense).max()
        assert dev <= FLOAT_SPARSE_REL_TOL * np.abs(dense).max()


class TestAutoRanking:
    def test_choices_match_cost_model_ranking(self, pruned_demo):
        """Every N:M layer of an auto plan is bound to the backend the
        cost-model cycle ranking picks for its geometry."""
        plan = compile_plan(pruned_demo, "int8", sparse=True, backend="auto")
        checked = 0
        for name, choice in plan.kernel_choices.items():
            if choice.fmt is None:
                continue
            kind = choice.kind
            shape = (
                plan.conv_shapes[name] if kind == "conv" else plan.fc_shapes[name]
            )
            expected = select_backend(kind, shape, SUPPORTED_FORMATS[choice.fmt])
            assert choice.backend == expected.backend, name
            assert choice.est_cycles == expected.cycles, name
            checked += 1
        assert checked > 0

    def test_auto_prefers_modelled_cheapest(self):
        """select_backend returns the argmin over the scored candidates
        (ties broken isa > sw > dense)."""
        from repro.kernels.shapes import ConvShape

        shape = ConvShape(iy=8, ix=8, c=16, k=8, fy=3, fx=3, s=1, p=1)
        sel = select_backend("conv", shape, FORMAT_1_8)
        scored = [c for c in sel.candidates if c.cycles is not None]
        assert sel.cycles == min(c.cycles for c in scored)
        assert sel.backend in [c.backend for c in scored]

    def test_forced_method_respected_under_every_knob(self, pruned_demo):
        xs = np.random.default_rng(9).normal(size=(2, 12, 12, 3)).astype(np.float32)
        dense_out = compile_plan(pruned_demo, "int8").execute(xs)
        for knob in KNOBS:
            for forced in ("gather", "dense"):
                for node in pruned_demo:
                    if node.op in ("conv2d", "dense"):
                        node.attrs["sparse_method"] = forced
                try:
                    plan = compile_plan(
                        pruned_demo, "int8", sparse=True, backend=knob
                    )
                finally:
                    for node in pruned_demo:
                        node.attrs.pop("sparse_method", None)
                nm = [c for c in plan.kernel_choices.values() if c.fmt]
                assert all(c.method == forced for c in nm), (knob, forced)
                if forced == "dense":
                    assert all(c.backend == "dense" for c in nm)
                elif knob == "isa":
                    assert all(c.backend == "sparse-isa" for c in nm)
                assert np.array_equal(plan.execute(xs), dense_out), (knob, forced)

    def test_isa_falls_back_to_sw_on_odd_k_fc(self):
        """The ISA FC layout needs an even K; an odd-K layer under the
        isa knob falls back to the SW arbitration, bit-identically."""
        rng = np.random.default_rng(8)
        g = Graph("odd-k")
        x = g.add_input("in", (64,))
        w = prune_fc_weights(
            (rng.normal(size=(5, 64)) * 0.4).astype(np.float32), FORMAT_1_8
        )
        g.add_dense("fc", x, w.astype(np.float32))
        quantized(g, (64,))
        plan = compile_plan(g, "int8", sparse=True, backend="isa")
        choice = plan.kernel_choices["fc"]
        assert choice.fmt == FORMAT_1_8.name
        assert choice.backend in ("sparse-sw", "dense")  # never sparse-isa
        xs = rng.normal(size=(3, 64)).astype(np.float32)
        assert np.array_equal(
            plan.execute(xs), compile_plan(g, "int8").execute(xs)
        )

    def test_isa_conv_records_duplicated_offset_bytes(self, pruned_demo):
        """ISA conv layers ship duplicated indices — their recorded
        weight bytes exceed the SW layout's for the same layer."""
        sw_plan = compile_plan(pruned_demo, "int8", sparse=True, backend="sw")
        isa_plan = compile_plan(pruned_demo, "int8", sparse=True, backend="isa")
        grew = 0
        for name, c in isa_plan.kernel_choices.items():
            if c.backend != "sparse-isa" or c.kind != "conv":
                continue
            # Byte rounding can absorb the duplication for tiny rows
            # (1 nnz/row packs into one byte either way) — never the
            # other direction though, and real layers must grow.
            assert c.weight_bytes >= sw_plan.kernel_choices[name].weight_bytes
            grew += c.weight_bytes > sw_plan.kernel_choices[name].weight_bytes
        assert grew > 0


class TestBackendCacheIsolation:
    def test_knobs_cache_separately(self, pruned_demo):
        engine = InferenceEngine()
        x = np.zeros((12, 12, 3), np.float32)
        for knob in KNOBS:
            engine.run(pruned_demo, x, mode="int8", sparse=True, backend=knob)
            engine.run(pruned_demo, x, mode="int8", sparse=True, backend=knob)
        assert engine.compile_count == 3
        assert set(engine.cached_plans(pruned_demo)) == {
            "int8+sparse",
            "int8+sparse+isa",
            "int8+sparse+auto",
        }
        plans = {
            knob: engine.compile(pruned_demo, "int8", sparse=True, backend=knob)
            for knob in KNOBS
        }
        assert plans["sw"] is not plans["isa"]
        assert plans["isa"] is not plans["auto"]
        assert plans["isa"].backend == "isa"

    def test_dense_plans_ignore_the_knob(self, pruned_demo):
        engine = InferenceEngine()
        a = engine.compile(pruned_demo, "int8", backend="sw")
        b = engine.compile(pruned_demo, "int8", backend="isa")
        assert a is b
        assert engine.compile_count == 1

    def test_unknown_knob_rejected(self, pruned_demo):
        engine = InferenceEngine()
        with pytest.raises(ValueError, match="backend"):
            engine.compile(pruned_demo, "int8", sparse=True, backend="turbo")
        with pytest.raises(ValueError, match="backend"):
            compile_plan(pruned_demo, "int8", sparse=True, backend="turbo")

    def test_registry_serves_isa_deployment_identically(self, pruned_demo):
        import asyncio

        from repro.serve.server import ModelServer

        xs = np.random.default_rng(5).normal(size=(4, 12, 12, 3)).astype(np.float32)

        async def run():
            async with ModelServer(workers=2) as server:
                server.register("sw", pruned_demo, "int8", sparse=True)
                dep = server.register(
                    "isa", pruned_demo, "int8", sparse=True, backend="isa"
                )
                assert dep.backend == "isa"
                assert any(
                    c.backend == "sparse-isa"
                    for c in dep.plan.kernel_choices.values()
                )
                return await server.infer("sw", xs), await server.infer("isa", xs)

        sw_res, isa_res = asyncio.run(run())
        assert np.array_equal(sw_res, isa_res)


class TestAccumDtype:
    def test_float64_accum_tightens_gather(self, pruned_demo):
        """Widened accumulation lands within one float32 ulp of the
        dense GEMM — at least as tight as the float32 gather."""
        engine = InferenceEngine()
        xs = np.random.default_rng(6).normal(size=(4, 12, 12, 3)).astype(np.float32)
        for node in pruned_demo:
            if node.op in ("conv2d", "dense"):
                node.attrs["sparse_method"] = "gather"
        try:
            dense = engine.run_batch(pruned_demo, xs, mode="float")
            f32 = engine.run_batch(pruned_demo, xs, mode="float", sparse=True)
            f64 = engine.run_batch(
                pruned_demo, xs, mode="float", sparse=True, accum_dtype="float64"
            )
        finally:
            for node in pruned_demo:
                node.attrs.pop("sparse_method", None)
        dev32 = np.abs(f32 - dense).max()
        dev64 = np.abs(f64 - dense).max()
        assert dev64 <= dev32
        assert dev64 <= 1e-5 * np.abs(dense).max()

    def test_accum_caches_separately_and_off_by_default(self, pruned_demo):
        engine = InferenceEngine()
        x = np.zeros((12, 12, 3), np.float32)
        engine.run(pruned_demo, x, mode="float", sparse=True)
        engine.run(pruned_demo, x, mode="float", sparse=True, accum_dtype="float64")
        engine.run(pruned_demo, x, mode="float", sparse=True, accum_dtype=np.float64)
        engine.run(pruned_demo, x, mode="float", sparse=True, accum_dtype="float32")
        assert engine.compile_count == 2
        assert set(engine.cached_plans(pruned_demo)) == {
            "float+sparse",
            "float+sparse+acc64",
        }
        plan = engine.compile(
            pruned_demo, "float", sparse=True, accum_dtype="float64"
        )
        assert plan.accum_dtype == "float64"

    def test_accum_rejected_outside_float_sparse(self, pruned_demo):
        with pytest.raises(ValueError, match="float sparse"):
            compile_plan(pruned_demo, "int8", sparse=True, accum_dtype="float64")
        with pytest.raises(ValueError, match="float sparse"):
            compile_plan(pruned_demo, "float", accum_dtype="float64")
        with pytest.raises(ValueError, match="accum_dtype"):
            compile_plan(pruned_demo, "float", sparse=True, accum_dtype="int16")


class TestMeasurementHarness:
    def test_measure_backend_cross_checks_sw(self):
        result = measure_sparse_throughput(
            FORMAT_1_8, batch=4, repeats=1, backend="isa"
        )
        assert result.backend == "isa"
        assert result.identical and result.matches_sw
        assert result.sw_s > 0
        assert result.backend_layers.get("sparse-isa", 0) > 0

    def test_autotune_k_chunk_is_advisory_and_exact(self):
        from repro.kernels import conv_sparse

        before = conv_sparse._k_chunk_override
        result = autotune_k_chunk(candidates=(8, 32), batch=4, repeats=1)
        assert conv_sparse._k_chunk_override == before  # restored
        assert result.best in (8, 32)
        assert result.identical
        assert set(result.timings_s) == {8, 32}
        assert all(t > 0 for t in result.timings_s.values())


class TestActSkip:
    """Activation zero-skipping (act_skip= knob): bit-identity on the
    paper models, cache isolation, calibration gating, and the
    one-scan-per-layer trace contract."""

    @staticmethod
    def sparse_batch(rng, n, shape, zero_fraction=0.6):
        """A batch whose lower spatial block is exactly zero — the
        pruned convs carry no biases, so the zeros propagate deep."""
        xs = (rng.normal(size=(n, *shape)) * 0.5).astype(np.float32)
        cut = int(shape[0] * (1.0 - zero_fraction))
        xs[:, cut:, :, :] = 0.0
        return xs

    @pytest.mark.parametrize("model", ["resnet", "vit"])
    @pytest.mark.parametrize("act_skip", ["auto", "force"])
    def test_paper_models_bit_identical(
        self, pruned_models, model, act_skip
    ):
        from repro.engine import calibrate_act_density

        graph, shape = pruned_models[model]
        rng = np.random.default_rng(13)
        xs = self.sparse_batch(rng, 2, shape)
        calibrate_act_density(graph, xs)
        try:
            engine = InferenceEngine()
            ref = engine.run_batch(
                graph, xs, mode="int8", sparse=True, backend="isa"
            )
            out = engine.run_batch(
                graph,
                xs,
                mode="int8",
                sparse=True,
                backend="isa",
                act_skip=act_skip,
            )
            plan = engine.compile(
                graph, "int8", sparse=True, backend="isa", act_skip=act_skip
            )
            if act_skip == "force":
                assert any(
                    c.act_skip for c in plan.kernel_choices.values()
                ), f"{model}: force bound no skip layer"
            assert np.array_equal(ref, out), f"{model}/{act_skip} diverged"
        finally:
            for node in graph:
                node.attrs.pop("act_density", None)

    @pytest.mark.parametrize("fmt_name", list(SUPPORTED_FORMATS))
    @pytest.mark.parametrize("knob", KNOBS)
    @pytest.mark.parametrize("mode", ["float", "int8"])
    def test_demo_all_formats_backends_modes(self, fmt_name, knob, mode):
        fmt = SUPPORTED_FORMATS[fmt_name]
        g = quantized(resnet_style_graph(fmt=fmt), (12, 12, 3), seed=1)
        rng = np.random.default_rng(8)
        xs = self.sparse_batch(rng, 4, (12, 12, 3))
        engine = InferenceEngine()
        ref = engine.run_batch(g, xs, mode=mode, sparse=True, backend=knob)
        out = engine.run_batch(
            g, xs, mode=mode, sparse=True, backend=knob, act_skip="force"
        )
        assert np.array_equal(ref, out), f"{fmt_name}/{knob}/{mode}"

    def test_knob_caches_separately_and_off_by_default(self, pruned_demo):
        engine = InferenceEngine()
        x = np.zeros((12, 12, 3), np.float32)
        engine.run(pruned_demo, x, mode="int8", sparse=True)
        engine.run(pruned_demo, x, mode="int8", sparse=True, act_skip="off")
        engine.run(pruned_demo, x, mode="int8", sparse=True, act_skip="auto")
        engine.run(pruned_demo, x, mode="int8", sparse=True, act_skip="force")
        assert engine.compile_count == 3
        assert set(engine.cached_plans(pruned_demo)) == {
            "int8+sparse",
            "int8+sparse+askip-auto",
            "int8+sparse+askip-force",
        }
        plan = engine.compile(
            pruned_demo, "int8", sparse=True, act_skip="force"
        )
        assert plan.act_skip == "force"
        assert engine.compile(pruned_demo, "int8", sparse=True).act_skip == "off"

    def test_rejected_outside_sparse_and_unknown_knob(self, pruned_demo):
        with pytest.raises(ValueError, match="sparse"):
            compile_plan(pruned_demo, "int8", act_skip="force")
        with pytest.raises(ValueError, match="act_skip"):
            compile_plan(pruned_demo, "int8", sparse=True, act_skip="always")
        engine = InferenceEngine()
        with pytest.raises(ValueError, match="sparse"):
            engine.compile(pruned_demo, "int8", act_skip="auto")
        with pytest.raises(ValueError, match="act_skip"):
            engine.compile(pruned_demo, "int8", sparse=True, act_skip="on")

    def test_calibration_stamps_and_auto_gates(self, pruned_demo):
        from repro.engine import calibrate_act_density

        rng = np.random.default_rng(3)
        xs = self.sparse_batch(rng, 3, (12, 12, 3), zero_fraction=0.75)
        densities = calibrate_act_density(pruned_demo, xs)
        try:
            assert densities  # every conv/dense layer measured
            for name, d in densities.items():
                assert 0.0 <= d <= 1.0, name
                assert pruned_demo.node(name).attrs["act_density"] == d
            plan = compile_plan(
                pruned_demo,
                "int8",
                sparse=True,
                backend="isa",
                act_skip="auto",
            )
            skipped = {
                n for n, c in plan.kernel_choices.items() if c.act_skip
            }
            # The deep zero block keeps several mid-network layers far
            # below their cutoffs; auto must engage on at least one and
            # record the calibration estimate it gated on.
            assert skipped
            for name in skipped:
                c = plan.kernel_choices[name]
                assert c.act_density == densities[name]
        finally:
            for node in pruned_demo:
                node.attrs.pop("act_density", None)

    def test_invalid_calibration_stamp_rejected(self, pruned_demo):
        # The stem stays dense (C=3 defeats the N:M pattern), and only
        # gather-bound layers validate the stamp — corrupt a pruned one.
        node = next(
            n
            for n in pruned_demo
            if n.op == "conv2d" and n.name != "stem"
        )
        node.attrs["act_density"] = 1.5
        try:
            with pytest.raises(ValueError, match="act_density"):
                compile_plan(
                    pruned_demo,
                    "int8",
                    sparse=True,
                    backend="isa",
                    act_skip="force",
                )
        finally:
            node.attrs.pop("act_density", None)

    def test_traced_run_one_mask_scan_per_skip_layer(self, pruned_demo):
        """Satellite regression for the relu double-scan: a traced
        act_skip run emits exactly ONE act_mask span per skipped layer,
        and relu-fed layers reuse the fused-relu mask instead of
        rescanning the im2col buffer."""
        from repro.trace.tracer import Tracer

        rng = np.random.default_rng(9)
        xs = self.sparse_batch(rng, 2, (12, 12, 3))
        plan = compile_plan(
            pruned_demo, "int8", sparse=True, backend="isa", act_skip="force"
        )
        skipped = [
            n for n, c in plan.kernel_choices.items() if c.act_skip
        ]
        assert skipped
        tracer = Tracer(enabled=True)
        plan.execute(xs, tracer=tracer)
        spans = [
            e
            for e in tracer.events()
            if e.get("ph") == "B" and e["name"].startswith("act_mask:")
        ]
        by_layer = {}
        for e in spans:
            by_layer.setdefault(e["name"].split(":", 1)[1], []).append(e)
        assert sorted(by_layer) == sorted(skipped)
        # The single-slot stash only survives until the next activation
        # executes: fused-relu is guaranteed exactly when a layer's relu
        # input is the step that ran immediately before it (e.g. the
        # residual's b1_down re-reads an older relu and must rescan).
        prev = None
        relu_fed = set()
        for node in pruned_demo:
            if (
                node.name in by_layer
                and prev is not None
                and prev.op == "relu"
                and node.inputs[0] == prev.name
            ):
                relu_fed.add(node.name)
            prev = node
        assert relu_fed  # the chain layers must hit the fused path
        for name, events in by_layer.items():
            assert len(events) == 1, f"{name}: {len(events)} mask scans"
            args = events[0]["args"]
            assert 0.0 <= args["density"] <= 1.0
            assert args["skipped"] is True
            expected = "fused-relu" if name in relu_fed else "rescan"
            assert args["source"] == expected, name
        counters = [
            e for e in tracer.events() if e.get("name") == "act_density"
        ]
        assert len(counters) == len(skipped)
