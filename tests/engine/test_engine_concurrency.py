"""Plan-cache thread safety: racing callers must compile exactly once.

The serving worker pool executes plans via threads, so two concurrent
requests for the same (graph, mode) race the engine's check-then-
compile.  The lock added for `repro.serve` makes that race benign:
one compilation, one shared plan object.
"""

import threading

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine


@pytest.fixture
def graph():
    return resnet_style_graph()


def _race(n_threads: int, fn):
    """Run ``fn(i)`` on ``n_threads`` threads released simultaneously."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []
    results: list = [None] * n_threads

    def runner(i: int) -> None:
        try:
            barrier.wait()
            results[i] = fn(i)
        except BaseException as err:  # pragma: no cover - surfaced below
            errors.append(err)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestCompileRace:
    def test_racing_compiles_compile_once(self, graph):
        engine = InferenceEngine()
        plans = _race(8, lambda i: engine.compile(graph, "float"))
        assert engine.compile_count == 1
        assert all(plan is plans[0] for plan in plans)

    def test_racing_modes_compile_once_each(self, graph):
        from repro.models.quantize import quantize_graph
        from repro.utils.rng import make_rng

        rng = make_rng(0)
        quantize_graph(
            graph, [rng.normal(size=(12, 12, 3)).astype(np.float32)]
        )
        engine = InferenceEngine()
        modes = ["float", "int8"] * 4
        plans = _race(8, lambda i: engine.compile(graph, modes[i]))
        assert engine.compile_count == 2
        float_plans = {id(p) for i, p in enumerate(plans) if modes[i] == "float"}
        int8_plans = {id(p) for i, p in enumerate(plans) if modes[i] == "int8"}
        assert len(float_plans) == 1
        assert len(int8_plans) == 1

    def test_racing_runs_share_one_plan(self, graph):
        """Full run() calls racing from cold also compile exactly once
        and agree bit-for-bit."""
        engine = InferenceEngine()
        x = np.linspace(-1, 1, 12 * 12 * 3, dtype=np.float32).reshape(
            12, 12, 3
        )
        outs = _race(6, lambda i: engine.run(graph, x))
        assert engine.compile_count == 1
        for out in outs[1:]:
            assert np.array_equal(out, outs[0])

    def test_invalidate_then_recompile_under_threads(self, graph):
        engine = InferenceEngine()
        engine.compile(graph, "float")
        engine.invalidate(graph)
        _race(4, lambda i: engine.compile(graph, "float"))
        assert engine.compile_count == 2  # once before, once after
        assert engine.cached_plans(graph) == ("float",)
