"""Tests for plan compilation (repro.engine.plan)."""

import numpy as np
import pytest

from repro.compiler.ir import Graph, Node
from repro.engine.plan import compile_plan, quantize_activations
from repro.kernels.shapes import ConvShape, FcShape
from repro.models.quantize import quantize_graph


def tiny_cnn(seed=0):
    rng = np.random.default_rng(seed)
    g = Graph("tiny")
    x = g.add_input("in", (6, 6, 3))
    w = (rng.normal(size=(4, 3, 3, 3)) * 0.4).astype(np.float32)
    x = g.add_conv2d("conv", x, w, bias=np.zeros(4, np.float32))
    x = g.add_elementwise("relu", "relu", x)
    x = g.add_global_avgpool("pool", x)
    g.add_dense("fc", x, (rng.normal(size=(5, 4)) * 0.4).astype(np.float32))
    return g


class TestCompile:
    def test_one_step_per_compute_node(self):
        plan = compile_plan(tiny_cnn())
        assert [s.name for s in plan.steps] == ["conv", "relu", "pool", "fc"]
        assert plan.input_name == "in"
        assert plan.output == "fc"

    def test_conv_geometry_resolved(self):
        plan = compile_plan(tiny_cnn())
        assert plan.conv_shapes["conv"] == ConvShape(
            iy=6, ix=6, c=3, k=4, fy=3, fx=3, s=1, p=1
        )

    def test_fc_geometry_resolved(self):
        plan = compile_plan(tiny_cnn())
        assert plan.fc_shapes["fc"] == FcShape(c=4, k=5, tokens=1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            compile_plan(tiny_cnn(), mode="fp16")

    def test_unknown_op_rejected(self):
        g = tiny_cnn()
        g._add(Node("mystery", "mystery_op", ["fc"], {}, (5,)))
        with pytest.raises(ValueError, match="cannot compile"):
            compile_plan(g)

    def test_wrong_batch_shape_rejected(self):
        plan = compile_plan(tiny_cnn())
        with pytest.raises(ValueError, match="input shape"):
            plan.execute(np.zeros((2, 5, 5, 3)))

    def test_dead_activations_released(self):
        """Steps release inputs after their last consumer; the residual
        branch keeps the identity alive until the add."""
        g = Graph("res")
        a = g.add_input("in", (2, 2, 1))
        b = g.add_elementwise("r", "relu", a)
        g.add_add("sum", a, b)
        plan = compile_plan(g)
        release = {s.name: s.release for s in plan.steps}
        assert release["r"] == ()  # "in" still needed by the add
        assert set(release["sum"]) == {"in", "r"}
        out, acts = plan.execute(np.zeros((1, 2, 2, 1)), return_acts=True)
        assert set(acts) == {"in", "r", "sum"}  # return_acts keeps all

    def test_same_input_consumed_twice_releases_once(self):
        g = Graph("dup")
        a = g.add_input("in", (2, 2, 1))
        g.add_add("sum", a, a)
        plan = compile_plan(g)
        x = np.ones((3, 2, 2, 1))
        assert np.array_equal(plan.execute(x), 2 * x)

    def test_weights_snapshotted_at_compile(self):
        """Mutating the graph after compile does not change the plan."""
        g = tiny_cnn()
        x = np.random.default_rng(1).normal(size=(1, 6, 6, 3))
        plan = compile_plan(g)
        before = plan.execute(x)
        g.node("conv").attrs["weights"] = np.zeros_like(
            g.node("conv").attrs["weights"]
        )
        assert np.array_equal(plan.execute(x), before)
        recompiled = compile_plan(g)
        assert not np.array_equal(recompiled.execute(x), before)


class TestQuantizeActivations:
    def test_returns_int8(self):
        x = np.random.default_rng(0).normal(size=(2, 8)).astype(np.float32)
        q = quantize_activations(x, 0.05)
        assert q.dtype == np.int8

    def test_matches_int32_quantisation_bitwise(self):
        """int8 narrowing is exact: values already live in [-128, 127]."""
        x = np.random.default_rng(1).normal(0, 3, size=(64,)).astype(np.float32)
        q8 = quantize_activations(x, 0.01)
        q32 = np.clip(np.rint(x / 0.01), -128, 127).astype(np.int32)
        assert np.array_equal(q8.astype(np.int32), q32)

    def test_conv_and_dense_paths_quantize_alike(self):
        """Both int8 kernels feed int8 activations to the accumulator.

        The seed executor cast the conv input to int8 but left the
        dense input at int32; the engine unifies on int8, and the dense
        output must be bit-identical to the int32-input computation.
        """
        rng = np.random.default_rng(2)
        g = Graph("fc-only")
        x = g.add_input("in", (16,))
        w = (rng.normal(size=(8, 16)) * 0.3).astype(np.float32)
        g.add_dense("fc", x, w)
        samples = [rng.normal(size=(16,)) for _ in range(3)]
        quantize_graph(g, samples)
        node = g.node("fc")
        xin = rng.normal(size=(16,)).astype(np.float32)

        plan = compile_plan(g, mode="int8")
        got = plan.execute(xin[None])[0]

        # Manual reference using int32-typed quantised activations (the
        # seed's dense path): the accumulator maths must agree exactly.
        a_scale = node.attrs["act_scale"]
        xq32 = np.clip(np.rint(xin / a_scale), -128, 127).astype(np.int32)
        acc = xq32 @ node.attrs["weights_q"].astype(np.int32).T
        want = (
            acc.astype(np.float64) * (a_scale * node.attrs["w_scale"])
        ).astype(np.float32)
        assert np.array_equal(got, want)
