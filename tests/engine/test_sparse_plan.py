"""Sparsity-aware execution plans (repro.engine.plan, sparse=True).

The acceptance bar: int8 sparse plans are **bit-identical** to dense
plans on the same graph — layer by layer and end to end, on pruned
ResNet and ViT models, and through the serving layer.  The decimation
maths is exact (int32 accumulation of the same products), so any
deviation is a routing or packing bug.
"""

import asyncio

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.engine import InferenceEngine, compile_plan
from repro.engine.bench import resnet_style_graph
from repro.models.quantize import quantize_graph
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.serve.server import ModelServer
from repro.sparsity.nm import FORMAT_1_4, FORMAT_1_8, FORMAT_1_16
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights


def pruned_cnn(fmt=FORMAT_1_8, seed=0):
    """A small conv+fc graph with every pattern-eligible layer pruned."""
    rng = np.random.default_rng(seed)
    g = Graph(f"pruned-{fmt.name}")
    x = g.add_input("in", (8, 8, 16))
    wc = prune_conv_weights(
        (rng.normal(size=(8, 3, 3, 16)) * 0.4).astype(np.float32), fmt
    )
    x = g.add_conv2d("conv", x, wc.astype(np.float32), bias=np.zeros(8, np.float32))
    x = g.add_elementwise("relu", "relu", x)
    x = g.add_global_avgpool("pool", x)
    wd = prune_fc_weights(
        (rng.normal(size=(6, 8)) * 0.4).astype(np.float32), FORMAT_1_4
    )
    g.add_dense("fc", x, wd.astype(np.float32))
    return g


def quantized(graph, shape, seed=0, n=3):
    rng = np.random.default_rng(seed)
    calib = [(rng.normal(size=shape) * 0.5).astype(np.float32) for _ in range(n)]
    quantize_graph(graph, calib)
    return graph


class TestSparseRouting:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_formats_detected_and_bound(self, fmt):
        g = quantized(pruned_cnn(fmt), (8, 8, 16))
        plan = compile_plan(g, mode="int8", sparse=True)
        assert plan.sparse
        assert plan.kernel_choices["conv"].fmt == fmt.name
        assert plan.kernel_choices["fc"].fmt == FORMAT_1_4.name
        assert set(plan.kernel_choices) == {"conv", "fc"}

    def test_dense_plan_records_choices_without_formats(self):
        g = quantized(pruned_cnn(), (8, 8, 16))
        plan = compile_plan(g, mode="int8", sparse=False)
        assert not plan.sparse
        assert all(c.fmt is None for c in plan.kernel_choices.values())
        assert all(c.method == "dense" for c in plan.kernel_choices.values())

    def test_float_mode_routes_sparse(self):
        """Float sparse plans pack the float32 weights and bind the
        float sparse kernels — no silent dense fallback; output within
        the documented tolerance of the dense float plan (deeper
        coverage in tests/engine/test_sparse_float_plan.py)."""
        from repro.engine.bench import FLOAT_SPARSE_REL_TOL

        g = quantized(pruned_cnn(), (8, 8, 16))
        xs = np.random.default_rng(1).normal(size=(3, 8, 8, 16)).astype(np.float32)
        dense = compile_plan(g, mode="float").execute(xs)
        plan = compile_plan(g, mode="float", sparse=True)
        assert plan.kernel_choices["conv"].fmt == FORMAT_1_8.name
        assert plan.kernel_choices["fc"].fmt == FORMAT_1_4.name
        dev = np.abs(plan.execute(xs) - dense).max()
        assert dev <= FLOAT_SPARSE_REL_TOL * np.abs(dense).max()

    def test_weight_bytes_match_packed_layout(self):
        """Per-layer weight bytes equal NMSparseMatrix.total_bytes of
        the independently re-packed quantised weights."""
        from repro.sparsity.nm import NMSparseMatrix, SUPPORTED_FORMATS

        g = quantized(pruned_cnn(FORMAT_1_8), (8, 8, 16))
        plan = compile_plan(g, mode="int8", sparse=True)
        for name, choice in plan.kernel_choices.items():
            wq = np.asarray(g.node(name).attrs["weights_q"])
            packed = NMSparseMatrix.from_dense(
                wq.reshape(wq.shape[0], -1), SUPPORTED_FORMATS[choice.fmt]
            )
            assert choice.weight_bytes == packed.total_bytes()
            assert choice.dense_bytes == packed.dense_bytes()
        assert plan.weight_bytes() == sum(
            c.weight_bytes for c in plan.kernel_choices.values()
        )
        assert plan.weight_bytes() < plan.dense_weight_bytes()

    def test_unquantized_graph_compiles_dense(self):
        """sparse=True on a graph without int8 metadata must not bind
        sparse kernels (there is nothing int8 to pack)."""
        g = pruned_cnn()
        plan = compile_plan(g, mode="int8", sparse=True)
        assert all(c.fmt is None for c in plan.kernel_choices.values())


class TestAnnotationOverrides:
    def test_force_dense_respected(self):
        g = quantized(pruned_cnn(), (8, 8, 16))
        g.node("conv").attrs["sparse_fmt"] = None  # force-dense
        plan = compile_plan(g, mode="int8", sparse=True)
        assert plan.kernel_choices["conv"].fmt is None
        assert plan.kernel_choices["fc"].fmt == FORMAT_1_4.name

    def test_forced_coarser_format_respected(self):
        """1:8-sparse weights also satisfy 1:4; forcing 1:4 must win
        over the auto-detected (most compressive) 1:8."""
        g = quantized(pruned_cnn(FORMAT_1_8), (8, 8, 16))
        g.node("conv").attrs["sparse_fmt"] = FORMAT_1_4
        plan = compile_plan(g, mode="int8", sparse=True)
        assert plan.kernel_choices["conv"].fmt == FORMAT_1_4.name
        # Output stays bit-identical under either packing.
        xs = np.random.default_rng(2).normal(size=(2, 8, 8, 16)).astype(np.float32)
        dense_out = compile_plan(g, mode="int8").execute(xs)
        assert np.array_equal(plan.execute(xs), dense_out)

    def test_sparse_method_override_pins_execution_path(self):
        """node.attrs['sparse_method'] overrides the cost model in
        both directions, bit-identically."""
        xs = np.random.default_rng(9).normal(size=(2, 8, 8, 16)).astype(np.float32)
        g = quantized(pruned_cnn(FORMAT_1_8), (8, 8, 16))
        dense_out = compile_plan(g, mode="int8").execute(xs)
        for forced in ("gather", "dense"):
            for node in g:
                if node.op in ("conv2d", "dense"):
                    node.attrs["sparse_method"] = forced
            plan = compile_plan(g, mode="int8", sparse=True)
            assert all(
                c.method == forced for c in plan.kernel_choices.values()
            )
            assert np.array_equal(plan.execute(xs), dense_out), forced

    def test_sparse_method_override_rejects_unknown_value(self):
        g = quantized(pruned_cnn(FORMAT_1_8), (8, 8, 16))
        g.node("conv").attrs["sparse_method"] = "turbo"
        with pytest.raises(ValueError, match="sparse_method"):
            compile_plan(g, mode="int8", sparse=True)

    def test_forced_unmodelled_format_runs_via_gather(self):
        """A forced format outside the paper's 1:4/1:8/1:16 set (here
        1:32) has no cost-model entry; it must still compile — routed
        through gather — and stay bit-identical to the dense plan."""
        from repro.sparsity.nm import NMFormat
        from repro.sparsity.pruning import nm_prune

        rng = np.random.default_rng(8)
        odd_fmt = NMFormat(1, 32)
        g = Graph("forced-1:32")
        x = g.add_input("in", (64,))
        w = nm_prune((rng.normal(size=(6, 64)) * 0.4).astype(np.float32), odd_fmt)
        g.add_dense("fc", x, w.astype(np.float32))
        quantized(g, (64,))
        g.node("fc").attrs["sparse_fmt"] = odd_fmt
        plan = compile_plan(g, mode="int8", sparse=True)
        choice = plan.kernel_choices["fc"]
        assert choice.fmt == "1:32"
        assert choice.method == "gather" and choice.variant is None
        xs = rng.normal(size=(3, 64)).astype(np.float32)
        assert np.array_equal(
            plan.execute(xs), compile_plan(g, mode="int8").execute(xs)
        )

    def test_forced_unsatisfied_format_fails_loudly(self):
        g = quantized(pruned_cnn(FORMAT_1_4), (8, 8, 16))  # 1:4-sparse only
        g.node("conv").attrs["sparse_fmt"] = FORMAT_1_16
        with pytest.raises(ValueError, match="violate"):
            compile_plan(g, mode="int8", sparse=True)


class TestPlanCache:
    def test_sparse_and_dense_plans_cached_separately(self):
        engine = InferenceEngine()
        g = quantized(pruned_cnn(), (8, 8, 16))
        x = np.zeros((8, 8, 16), np.float32)
        engine.run(g, x, mode="int8")
        engine.run(g, x, mode="int8", sparse=True)
        engine.run(g, x, mode="int8", sparse=True)
        assert engine.compile_count == 2
        assert set(engine.cached_plans(g)) == {"int8", "int8+sparse"}

    def test_float_sparse_cached_separately_from_dense_float(self):
        """Float sparse plans are real since PR 4: they bind the float
        sparse kernels, so they cache under their own key."""
        engine = InferenceEngine()
        g = quantized(pruned_cnn(), (8, 8, 16))
        x = np.zeros((8, 8, 16), np.float32)
        engine.run(g, x, mode="float")
        engine.run(g, x, mode="float", sparse=True)
        engine.run(g, x, mode="float", sparse=True)
        assert engine.compile_count == 2
        assert set(engine.cached_plans(g)) == {"float", "float+sparse"}

    def test_select_fmt_plans_cached_per_budget(self):
        engine = InferenceEngine()
        g = quantized(pruned_cnn(), (8, 8, 16))
        x = np.zeros((8, 8, 16), np.float32)
        engine.run(g, x, mode="int8", sparse=True, select_fmt=True)
        engine.run(g, x, mode="int8", sparse=True, select_fmt=True)
        engine.run(
            g, x, mode="int8", sparse=True, select_fmt=True, accuracy_budget=0.5
        )
        assert engine.compile_count == 2
        assert set(engine.cached_plans(g)) == {
            "int8+sparse+select@0",
            "int8+sparse+select@0.5",
        }

    def test_annotation_change_refreshes_cached_sparse_plan(self):
        """Setting a sparse_fmt / sparse_method override after a warm
        compile must recompile the sparse plan (dense plans are
        unaffected — they never read the annotations)."""
        engine = InferenceEngine()
        g = quantized(pruned_cnn(FORMAT_1_8), (8, 8, 16))
        plan = engine.compile(g, "int8", sparse=True)
        assert plan.kernel_choices["conv"].fmt == FORMAT_1_8.name
        g.node("conv").attrs["sparse_fmt"] = None  # force-dense
        refreshed = engine.compile(g, "int8", sparse=True)
        assert refreshed is not plan
        assert refreshed.kernel_choices["conv"].fmt is None
        g.node("fc").attrs["sparse_method"] = "gather"
        forced = engine.compile(g, "int8", sparse=True)
        assert forced is not refreshed
        assert forced.kernel_choices["fc"].method == "gather"
        # The dense plan is untouched by annotation churn.
        engine.compile(g, "int8")
        count = engine.compile_count
        g.node("conv").attrs["sparse_method"] = "dense"
        engine.compile(g, "int8")
        assert engine.compile_count == count

    def test_measure_sparse_throughput_restores_forced_annotations(self):
        from repro.engine.bench import measure_sparse_throughput

        g = quantized(resnet_style_graph(fmt=FORMAT_1_8), (12, 12, 3), seed=3)
        measure_sparse_throughput(
            FORMAT_1_8, batch=2, repeats=1, graph=g, force_method="gather"
        )
        assert all("sparse_method" not in n.attrs for n in g)
        natural = measure_sparse_throughput(FORMAT_1_8, batch=2, repeats=1, graph=g)
        assert natural.gather_layers < natural.sparse_layers

    def test_requantisation_refreshes_sparse_plan(self):
        engine = InferenceEngine()
        g = quantized(pruned_cnn(), (8, 8, 16))
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 8, 16)).astype(np.float32)
        before = engine.run(g, x, mode="int8", sparse=True)
        quantized(g, (8, 8, 16), seed=9)  # re-quantise with other scales
        after = engine.run(g, x, mode="int8", sparse=True)
        assert engine.compile_count == 2
        assert not np.array_equal(before, after)


@pytest.fixture(scope="module")
def pruned_models():
    """Pruned + quantised paper models (the acceptance-bar graphs)."""
    models = {}
    for name, graph, shape in [
        (
            "resnet",
            resnet18_cifar(num_classes=10, fmt=FORMAT_1_8, seed=0),
            (32, 32, 3),
        ),
        ("vit", vit_small(fmt=FORMAT_1_8, seed=0, depth=1), (224, 224, 3)),
    ]:
        models[name] = (quantized(graph, shape), shape)
    return models


class TestBitIdenticalToDense:
    """The tentpole contract, on the paper's model families."""

    @pytest.mark.parametrize("model", ["resnet", "vit"])
    def test_layerwise_and_end_to_end(self, pruned_models, model):
        graph, shape = pruned_models[model]
        rng = np.random.default_rng(7)
        xs = (rng.normal(size=(2, *shape)) * 0.5).astype(np.float32)
        engine = InferenceEngine()
        dense_out, dense_acts = engine.run_batch(
            graph, xs, mode="int8", return_acts=True
        )
        sparse_out, sparse_acts = engine.run_batch(
            graph, xs, mode="int8", return_acts=True, sparse=True
        )
        sparse_plan = engine.compile(graph, "int8", sparse=True)
        assert any(c.fmt is not None for c in sparse_plan.kernel_choices.values())
        assert set(dense_acts) == set(sparse_acts)
        for name in dense_acts:
            assert np.array_equal(
                dense_acts[name], sparse_acts[name]
            ), f"layer {name} diverged"
        assert np.array_equal(dense_out, sparse_out)
        assert np.isfinite(sparse_out).all()

    def test_resnet_style_demo_graph_all_formats(self):
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            g = quantized(resnet_style_graph(fmt=fmt), (12, 12, 3), seed=1)
            xs = (
                np.random.default_rng(4).normal(size=(5, 12, 12, 3)).astype(np.float32)
            )
            engine = InferenceEngine()
            dense = engine.run_batch(g, xs, mode="int8")
            sparse = engine.run_batch(g, xs, mode="int8", sparse=True)
            assert np.array_equal(dense, sparse), fmt.name


class TestServedSparse:
    def test_sparse_deployment_serves_dense_identical_responses(self):
        """A (graph, int8, sparse) deployment served through the
        batcher returns responses bit-identical to the dense
        deployment of the same graph."""
        g = quantized(resnet_style_graph(fmt=FORMAT_1_8), (12, 12, 3), seed=2)
        xs = np.random.default_rng(5).normal(size=(6, 12, 12, 3)).astype(np.float32)

        async def run():
            async with ModelServer(workers=2) as server:
                dense_dep = server.register("dense", g, "int8")
                sparse_dep = server.register("sparse", g, "int8", sparse=True)
                assert sparse_dep.sparse and not dense_dep.sparse
                dense_res = await server.infer("dense", xs)
                sparse_res = await server.infer("sparse", xs)
                return dense_res, sparse_res

        dense_res, sparse_res = asyncio.run(run())
        assert np.array_equal(dense_res, sparse_res)

    def test_demo_server_hosts_pruned_sparse_deployment(self):
        from repro.serve.demo import DEMO_MODELS, demo_server

        assert "resnet-sparse-int8" in DEMO_MODELS

        async def run():
            async with demo_server() as server:
                dep = server.registry.get("resnet-sparse-int8")
                assert dep.sparse and dep.mode == "int8"
                assert any(
                    c.fmt is not None for c in dep.plan.kernel_choices.values()
                )
                x = np.zeros((12, 12, 3), np.float32)
                out = await server.infer("resnet-sparse-int8", x)
                assert out.shape == (10,)

        asyncio.run(run())

    def test_demo_server_sparse_opt_out(self):
        from repro.serve.demo import demo_server

        async def run():
            async with demo_server(sparse=False) as server:
                assert "resnet-sparse-int8" not in server.registry.names()

        asyncio.run(run())
