"""Float sparse execution plans (repro.engine.plan, mode="float").

Mirrors tests/engine/test_sparse_plan.py for the float path.  The
contract differs from int8 in exactly one place: gather-bound layers
accumulate only the NNZ products (in decimation order), so their output
matches the dense float GEMM to rounding, not bit-exactly — the
documented gate is ``max |sparse - dense| <= FLOAT_SPARSE_REL_TOL *
max |dense|`` (:data:`repro.engine.bench.FLOAT_SPARSE_REL_TOL`).
Scatter-to-dense layers restore the exact float32 weight matrix and
stay bit-identical.
"""

import asyncio

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.engine import InferenceEngine, compile_plan
from repro.engine.bench import (
    FLOAT_SPARSE_REL_TOL,
    measure_sparse_throughput,
    resnet_style_graph,
)
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.serve.server import ModelServer
from repro.sparsity.nm import (
    FORMAT_1_4,
    FORMAT_1_8,
    FORMAT_1_16,
    NMSparseMatrix,
    SUPPORTED_FORMATS,
)
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights


def pruned_cnn(fmt=FORMAT_1_8, seed=0):
    """A small float conv+fc graph with pattern-eligible layers pruned."""
    rng = np.random.default_rng(seed)
    g = Graph(f"float-pruned-{fmt.name}")
    x = g.add_input("in", (8, 8, 16))
    wc = prune_conv_weights(
        (rng.normal(size=(8, 3, 3, 16)) * 0.4).astype(np.float32), fmt
    )
    x = g.add_conv2d("conv", x, wc.astype(np.float32), bias=np.zeros(8, np.float32))
    x = g.add_elementwise("relu", "relu", x)
    x = g.add_global_avgpool("pool", x)
    wd = prune_fc_weights(
        (rng.normal(size=(6, 8)) * 0.4).astype(np.float32), FORMAT_1_4
    )
    g.add_dense("fc", x, wd.astype(np.float32))
    return g


def assert_within_float_tol(sparse_out, dense_out, label=""):
    peak = float(np.abs(dense_out).max())
    dev = float(np.abs(np.asarray(sparse_out) - np.asarray(dense_out)).max())
    assert dev <= FLOAT_SPARSE_REL_TOL * peak, (
        f"{label}: deviation {dev:.3e} exceeds "
        f"{FLOAT_SPARSE_REL_TOL:.0e} * peak ({peak:.3e})"
    )


class TestFloatSparseRouting:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_formats_detected_and_bound(self, fmt):
        """No dense fallback: float plans detect and pack float weights."""
        g = pruned_cnn(fmt)
        plan = compile_plan(g, mode="float", sparse=True)
        assert plan.sparse and plan.mode == "float"
        assert plan.kernel_choices["conv"].fmt == fmt.name
        assert plan.kernel_choices["fc"].fmt == FORMAT_1_4.name

    def test_weight_bytes_match_float_packed_layout(self):
        """Recorded bytes equal the float32 NMSparseMatrix layout
        (4-byte values + packed offsets) of each layer's weights."""
        g = pruned_cnn(FORMAT_1_8)
        plan = compile_plan(g, mode="float", sparse=True)
        for name, choice in plan.kernel_choices.items():
            w = np.asarray(g.node(name).attrs["weights"], dtype=np.float32)
            packed = NMSparseMatrix.from_dense(
                w.reshape(w.shape[0], -1),
                SUPPORTED_FORMATS[choice.fmt],
                dtype=np.float32,
            )
            assert choice.weight_bytes == packed.total_bytes()
            assert choice.dense_bytes == packed.dense_bytes() == 4 * w.size
        assert plan.weight_bytes() < plan.dense_weight_bytes()

    def test_scatter_to_dense_layers_bit_identical(self):
        """Forcing every layer to the scatter method must reproduce the
        dense float plan bit for bit (the scatter restores the exact
        float32 matrix; same GEMM, same reduction order)."""
        g = pruned_cnn(FORMAT_1_8)
        xs = np.random.default_rng(2).normal(size=(3, 8, 8, 16)).astype(np.float32)
        dense = compile_plan(g, mode="float").execute(xs)
        for node in g:
            if node.op in ("conv2d", "dense"):
                node.attrs["sparse_method"] = "dense"
        plan = compile_plan(g, mode="float", sparse=True)
        assert all(c.method == "dense" for c in plan.kernel_choices.values())
        assert all(c.fmt is not None for c in plan.kernel_choices.values())
        assert np.array_equal(plan.execute(xs), dense)

    def test_gather_layers_within_documented_tolerance(self):
        g = pruned_cnn(FORMAT_1_8)
        xs = np.random.default_rng(3).normal(size=(4, 8, 8, 16)).astype(np.float32)
        dense = compile_plan(g, mode="float").execute(xs)
        for node in g:
            if node.op in ("conv2d", "dense"):
                node.attrs["sparse_method"] = "gather"
        plan = compile_plan(g, mode="float", sparse=True)
        assert all(c.method == "gather" for c in plan.kernel_choices.values())
        assert_within_float_tol(plan.execute(xs), dense, "forced gather")

    def test_force_dense_annotation_respected(self):
        g = pruned_cnn(FORMAT_1_8)
        g.node("conv").attrs["sparse_fmt"] = None
        plan = compile_plan(g, mode="float", sparse=True)
        assert plan.kernel_choices["conv"].fmt is None
        assert plan.kernel_choices["fc"].fmt == FORMAT_1_4.name

    def test_int8_plan_of_same_graph_unaffected(self):
        """The float routing must not leak into int8 plans: an int8
        sparse plan still requires quantisation metadata."""
        g = pruned_cnn(FORMAT_1_8)  # no weights_q attached
        plan = compile_plan(g, mode="int8", sparse=True)
        assert all(c.fmt is None for c in plan.kernel_choices.values())


class TestFloatEquivalenceOnPaperModels:
    """The tentpole contract, on the paper's model families (float)."""

    @pytest.mark.parametrize(
        "builder,shape",
        [
            (
                lambda: resnet18_cifar(num_classes=10, fmt=FORMAT_1_8, seed=0),
                (32, 32, 3),
            ),
            (
                lambda: vit_small(fmt=FORMAT_1_8, seed=0, depth=1),
                (224, 224, 3),
            ),
        ],
        ids=["resnet18", "vit"],
    )
    def test_layerwise_and_end_to_end(self, builder, shape):
        graph = builder()
        rng = np.random.default_rng(7)
        xs = (rng.normal(size=(2, *shape)) * 0.5).astype(np.float32)
        engine = InferenceEngine()
        dense_out, dense_acts = engine.run_batch(
            graph, xs, mode="float", return_acts=True
        )
        sparse_out, sparse_acts = engine.run_batch(
            graph, xs, mode="float", return_acts=True, sparse=True
        )
        plan = engine.compile(graph, "float", sparse=True)
        assert any(c.fmt is not None for c in plan.kernel_choices.values())
        assert set(dense_acts) == set(sparse_acts)
        for name in dense_acts:
            assert_within_float_tol(
                sparse_acts[name], dense_acts[name], f"layer {name}"
            )
        assert_within_float_tol(sparse_out, dense_out, "output")
        assert np.isfinite(sparse_out).all()

    def test_resnet_style_demo_graph_all_formats(self):
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            g = resnet_style_graph(fmt=fmt, seed=1)
            xs = (
                np.random.default_rng(4)
                .normal(size=(5, 12, 12, 3))
                .astype(np.float32)
            )
            engine = InferenceEngine()
            dense = engine.run_batch(g, xs, mode="float")
            sparse = engine.run_batch(g, xs, mode="float", sparse=True)
            assert_within_float_tol(sparse, dense, fmt.name)

    def test_measure_sparse_throughput_float_mode(self):
        r = measure_sparse_throughput(FORMAT_1_8, batch=2, repeats=1, mode="float")
        assert r.mode == "float"
        assert r.sparse_layers > 0
        assert r.within_tolerance
        assert r.sparse_weight_bytes < r.dense_weight_bytes


class TestServedFloatSparse:
    def test_float_sparse_deployment_within_tolerance_of_dense(self):
        g = resnet_style_graph(fmt=FORMAT_1_8, seed=2)
        xs = np.random.default_rng(5).normal(size=(6, 12, 12, 3)).astype(np.float32)

        async def run():
            async with ModelServer(workers=2) as server:
                dense_dep = server.register("dense", g, "float")
                sparse_dep = server.register("sparse", g, "float", sparse=True)
                assert sparse_dep.sparse and sparse_dep.mode == "float"
                assert any(
                    c.fmt is not None
                    for c in sparse_dep.plan.kernel_choices.values()
                )
                return (
                    await server.infer("dense", xs),
                    await server.infer("sparse", xs),
                )

        dense_res, sparse_res = asyncio.run(run())
        assert_within_float_tol(sparse_res, dense_res, "served")

    def test_demo_server_hosts_float_sparse_and_selected_deployments(self):
        from repro.serve.demo import DEMO_MODELS, demo_server

        assert "resnet-sparse-float" in DEMO_MODELS
        assert "resnet-select-int8" in DEMO_MODELS

        async def run():
            async with demo_server() as server:
                dep = server.registry.get("resnet-sparse-float")
                assert dep.sparse and dep.mode == "float"
                assert any(
                    c.fmt is not None for c in dep.plan.kernel_choices.values()
                )
                sel = server.registry.get("resnet-select-int8")
                assert sel.sparse and sel.select_fmt
                assert sel.plan.weight_bytes() < sel.plan.dense_weight_bytes()
                x = np.zeros((12, 12, 3), np.float32)
                out = await server.infer("resnet-sparse-float", x)
                assert out.shape == (10,)

        asyncio.run(run())
