"""Cost-model-driven per-layer N:M format selection.

Unit coverage of :func:`repro.kernels.registry.select_format` (the
compile-time search over 1:4 / 1:8 / 1:16 / dense under a weight-energy
budget) plus its integration through ``compile_plan(select_fmt=True)``,
the engine plan cache, and the serving registry.  The acceptance bar:
on the mixed-format demo graph the selected plan's ``weight_bytes()``
beats the fixed-1:4 packing, losslessly (bit-identical to dense for
int8) at budget 0.
"""

import numpy as np
import pytest

from repro.engine import InferenceEngine, compile_plan
from repro.engine.bench import (
    MIXED_DEMO_FMTS,
    measure_format_selection,
    resnet_style_graph,
)
from repro.kernels.cost_model import format_energy_loss
from repro.kernels.registry import select_format
from repro.kernels.shapes import ConvShape, FcShape
from repro.models.quantize import quantize_graph
from repro.sparsity.nm import FORMAT_1_4, FORMAT_1_8, FORMAT_1_16
from repro.sparsity.pruning import nm_prune
from repro.utils.rng import make_rng


def fc_shape(k, c):
    return FcShape(c=c, k=k, tokens=1)


def quantized_mixed_graph(seed=0):
    graph = resnet_style_graph(seed=seed, layer_fmts=MIXED_DEMO_FMTS)
    rng = make_rng(seed)
    calib = [rng.normal(size=(12, 12, 3)).astype(np.float32) for _ in range(4)]
    quantize_graph(graph, calib)
    return graph


class TestFormatEnergyLoss:
    def test_zero_for_satisfied_pattern(self):
        rng = np.random.default_rng(0)
        w = nm_prune(rng.normal(size=(6, 32)), FORMAT_1_8)
        assert format_energy_loss(w, FORMAT_1_8) == 0.0
        assert format_energy_loss(w, FORMAT_1_4) == 0.0  # 1:8 ⊂ 1:4

    def test_positive_for_denser_matrix(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(6, 32))
        loss = format_energy_loss(w, FORMAT_1_4)
        assert 0.0 < loss < 1.0
        # Coarser formats discard at least as much energy.
        assert format_energy_loss(w, FORMAT_1_16) >= loss

    def test_all_zero_matrix_is_lossless(self):
        assert format_energy_loss(np.zeros((3, 16)), FORMAT_1_8) == 0.0


class TestSelectFormat:
    def test_lossless_picks_most_compressive_satisfied(self):
        rng = np.random.default_rng(2)
        w = nm_prune(rng.normal(size=(8, 64)).astype(np.float32), FORMAT_1_16)
        choice = select_format("fc", fc_shape(8, 64), w, budget=0.0)
        assert choice.fmt == FORMAT_1_16
        assert choice.loss == 0.0
        assert choice.cycles is not None

    def test_dense_matrix_falls_back_dense_at_budget_zero(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(8, 64)).astype(np.float32)  # no zeros
        choice = select_format("fc", fc_shape(8, 64), w, budget=0.0)
        assert choice.fmt is None and choice.loss == 0.0
        assert choice.weight_bytes == 8 * 64

    def test_budget_admits_lossy_repruning(self):
        """A 1:4-sparse matrix steps to 1:8 once the budget covers the
        energy the extra pruning discards."""
        rng = np.random.default_rng(4)
        w = nm_prune(rng.normal(size=(8, 64)).astype(np.float32), FORMAT_1_4)
        loss_18 = format_energy_loss(w, FORMAT_1_8)
        assert loss_18 > 0.0
        tight = select_format("fc", fc_shape(8, 64), w, budget=loss_18 / 2)
        assert tight.fmt == FORMAT_1_4
        loose = select_format("fc", fc_shape(8, 64), w, budget=1.0)
        assert loose.fmt == FORMAT_1_16
        assert loose.weight_bytes < tight.weight_bytes
        assert loose.loss > 0.0

    def test_all_zero_matrix_stays_dense(self):
        """Pointless sparse lowering is suppressed (detect_format
        agrees): an all-zero layer keeps its dense binding."""
        w = np.zeros((4, 32), np.float32)
        choice = select_format("fc", fc_shape(4, 32), w, budget=1.0)
        assert choice.fmt is None

    def test_misaligned_reduce_dim_skips_formats(self):
        """R=72 divides 4 and 8 but not 16 — 1:16 must not be scored."""
        rng = np.random.default_rng(5)
        shape = ConvShape(iy=8, ix=8, c=8, k=8, fy=3, fx=3, s=1, p=1)
        w = nm_prune(rng.normal(size=(8, 72)).astype(np.float32), FORMAT_1_8)
        choice = select_format("conv", shape, w, budget=1.0)
        assert "1:16" not in {c.fmt_name for c in choice.candidates}
        assert choice.fmt == FORMAT_1_8

    def test_value_bytes_scales_candidate_storage(self):
        rng = np.random.default_rng(6)
        w = nm_prune(rng.normal(size=(8, 64)).astype(np.float32), FORMAT_1_8)
        int8 = select_format("fc", fc_shape(8, 64), w, value_bytes=1)
        f32 = select_format("fc", fc_shape(8, 64), w, value_bytes=4)
        assert int8.fmt == f32.fmt == FORMAT_1_8
        nnz = 8 * 64 // 8
        assert f32.weight_bytes - int8.weight_bytes == 3 * nnz

    def test_candidates_recorded_with_dense_baseline(self):
        rng = np.random.default_rng(7)
        w = nm_prune(rng.normal(size=(8, 64)).astype(np.float32), FORMAT_1_8)
        choice = select_format("fc", fc_shape(8, 64), w, budget=0.0)
        names = [c.fmt_name for c in choice.candidates]
        assert names[0] == "dense"
        assert set(names) == {"dense", "1:4", "1:8", "1:16"}
        by_name = {c.fmt_name: c for c in choice.candidates}
        assert by_name["dense"].admissible
        assert by_name["1:8"].admissible and not by_name["1:16"].admissible

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            select_format("fc", fc_shape(2, 8), np.zeros((2, 8)), budget=-0.1)
        with pytest.raises(ValueError, match="2-D"):
            select_format("fc", fc_shape(2, 8), np.zeros(8))


class TestSelectionPlans:
    def test_select_fmt_requires_sparse(self):
        g = quantized_mixed_graph()
        with pytest.raises(ValueError, match="sparse"):
            compile_plan(g, mode="int8", select_fmt=True)
        with pytest.raises(ValueError, match="accuracy_budget"):
            compile_plan(
                g, mode="int8", sparse=True, select_fmt=True, accuracy_budget=-1.0
            )

    def test_engine_validates_select_fmt_before_cache_lookup(self):
        """A warm dense plan must not mask the invalid combination:
        the dense cache key ignores select_fmt, so without eager
        validation a cached plan would be returned silently."""
        engine = InferenceEngine()
        g = quantized_mixed_graph()
        engine.compile(g, "int8")  # warm the dense plan
        with pytest.raises(ValueError, match="sparse"):
            engine.compile(g, "int8", select_fmt=True)
        with pytest.raises(ValueError, match="accuracy_budget"):
            engine.compile(g, "int8", sparse=True, accuracy_budget=-0.5)

    def test_budget_zero_bit_identical_and_beats_fixed_14(self):
        """The acceptance bar: lossless selection packs each layer at
        its most compressive satisfied format — fewer bytes than
        uniform 1:4, zero output deviation."""
        r = measure_format_selection(budget=0.0, batch=4, repeats=1)
        assert r.selected_weight_bytes < r.fixed_weight_bytes
        assert r.identical and r.finite and r.losses_within_budget
        assert r.max_rel_dev == 0.0
        # The mixed schedule is picked up layer by layer.
        for name, fmt in MIXED_DEMO_FMTS.items():
            assert r.selected_formats[name] == fmt.name, name
        assert r.selected_formats["stem"] is None
        assert all(
            c.loss == 0.0 for c in r.kernel_choices.values() if c.fmt is not None
        )

    def test_lossy_budget_reprunes_uniform_graph(self):
        """On the uniformly 1:4-pruned demo, a generous budget re-prunes
        layers to coarser formats: fewer bytes, recorded losses, finite
        outputs — and every loss within the budget."""
        lossless = measure_format_selection(
            budget=0.0, batch=4, repeats=1, base_fmt=FORMAT_1_4
        )
        lossy = measure_format_selection(
            budget=0.5, batch=4, repeats=1, base_fmt=FORMAT_1_4
        )
        assert lossless.selected_weight_bytes == lossless.fixed_weight_bytes
        assert lossy.selected_weight_bytes < lossless.selected_weight_bytes
        assert lossy.losses_within_budget and lossy.finite
        assert any(
            c.loss is not None and c.loss > 0.0
            for c in lossy.kernel_choices.values()
        )
        assert not lossy.identical  # re-pruned weights change the network

    def test_explicit_annotation_wins_over_selection(self):
        g = quantized_mixed_graph()
        g.node("b0_conv1").attrs["sparse_fmt"] = FORMAT_1_4
        plan = compile_plan(g, mode="int8", sparse=True, select_fmt=True)
        assert plan.kernel_choices["b0_conv1"].fmt == FORMAT_1_4.name
        assert plan.kernel_choices["b0_conv2"].fmt == FORMAT_1_8.name

    def test_lossy_selection_does_not_mutate_graph(self):
        g = quantized_mixed_graph()
        before = {
            n.name: np.asarray(n.attrs["weights_q"]).copy()
            for n in g
            if "weights_q" in n.attrs
        }
        compile_plan(
            g, mode="int8", sparse=True, select_fmt=True, accuracy_budget=0.9
        )
        for name, w in before.items():
            assert np.array_equal(np.asarray(g.node(name).attrs["weights_q"]), w)

    def test_measure_restores_baseline_annotations(self):
        g = quantized_mixed_graph()
        measure_format_selection(budget=0.0, batch=2, repeats=1, graph=g)
        assert all("sparse_fmt" not in n.attrs for n in g)

    def test_float_mode_selection(self):
        r = measure_format_selection(budget=0.0, batch=4, repeats=1, mode="float")
        assert r.selected_weight_bytes < r.fixed_weight_bytes
        from repro.engine.bench import FLOAT_SPARSE_REL_TOL

        assert r.max_rel_dev <= FLOAT_SPARSE_REL_TOL

    def test_selection_deployment_served(self):
        import asyncio

        from repro.serve.server import ModelServer

        g = quantized_mixed_graph(seed=1)
        xs = np.random.default_rng(8).normal(size=(3, 12, 12, 3)).astype(np.float32)

        async def run():
            async with ModelServer(workers=1) as server:
                dense = server.register("dense", g, "int8")
                sel = server.register(
                    "sel", g, "int8", sparse=True, select_fmt=True
                )
                assert sel.select_fmt and sel.accuracy_budget == 0.0
                assert sel.plan.select_fmt
                assert sel.plan.weight_bytes() < dense.plan.weight_bytes()
                return (
                    await server.infer("dense", xs),
                    await server.infer("sel", xs),
                )

        dense_out, sel_out = asyncio.run(run())
        assert np.array_equal(dense_out, sel_out)  # lossless => bit-identical
