"""Tests for the batched inference engine (repro.engine.engine).

The equivalence matrix is the engine's core contract: batched execution
must match per-sample :func:`repro.compiler.executor.execute_graph`
bit for bit, in both numeric modes, on both paper model families.
"""

import numpy as np
import pytest

from repro.compiler.executor import execute_graph
from repro.compiler.ir import Graph
from repro.engine import InferenceEngine, get_default_engine
from repro.models.quantize import quantize_graph
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small


def tiny_cnn(seed=0):
    rng = np.random.default_rng(seed)
    g = Graph("tiny")
    x = g.add_input("in", (6, 6, 3))
    w = (rng.normal(size=(4, 3, 3, 3)) * 0.4).astype(np.float32)
    x = g.add_conv2d("conv", x, w, bias=np.zeros(4, np.float32))
    x = g.add_elementwise("relu", "relu", x)
    x = g.add_global_avgpool("pool", x)
    g.add_dense("fc", x, (rng.normal(size=(5, 4)) * 0.4).astype(np.float32))
    return g


class TestPlanCache:
    def test_same_graph_compiles_once(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        x = np.zeros((6, 6, 3))
        engine.run(g, x)
        engine.run(g, x)
        engine.run_batch(g, x[None])
        assert engine.compile_count == 1
        assert engine.cached_plans(g) == ("float",)

    def test_modes_cached_separately(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        x = np.zeros((6, 6, 3))
        engine.run(g, x, mode="float")
        engine.run(g, x, mode="int8")
        assert engine.compile_count == 2
        assert set(engine.cached_plans(g)) == {"float", "int8"}

    def test_distinct_graphs_cached_independently(self):
        engine = InferenceEngine()
        a, b = tiny_cnn(0), tiny_cnn(1)
        x = np.zeros((6, 6, 3))
        engine.run(a, x)
        engine.run(b, x)
        assert engine.compile_count == 2

    def test_invalidate_forces_recompile(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        x = np.random.default_rng(0).normal(size=(6, 6, 3))
        before = engine.run(g, x)
        g.node("conv").attrs["weights"] = np.zeros_like(
            g.node("conv").attrs["weights"]
        )
        assert np.array_equal(engine.run(g, x), before)  # stale plan
        engine.invalidate(g)
        assert not np.array_equal(engine.run(g, x), before)
        assert engine.compile_count == 2

    def test_quantize_graph_refreshes_stale_int8_plans(self):
        """Attaching int8 metadata must not leave a stale int8 plan —
        on any engine, not just the default one."""
        engines = [InferenceEngine(), get_default_engine()]
        g = tiny_cnn()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 6, 3))
        fallbacks = [e.run(g, x, mode="int8") for e in engines]
        quantize_graph(g, [rng.normal(size=(6, 6, 3)) for _ in range(3)])
        for engine, fallback in zip(engines, fallbacks):
            quantized = engine.run(g, x, mode="int8")
            assert not np.array_equal(fallback, quantized)

    def test_requantisation_never_serves_stale_weights(self):
        """Repeated re-quantisation must always recompile the int8 plan
        (regression: an id()-based signature hit ABA reuse when numpy
        recycled freed weight-array addresses)."""
        engine = InferenceEngine()
        g = tiny_cnn()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(6, 6, 3))
        fresh = InferenceEngine()
        for round_ in range(4):
            calib = [rng.normal(size=(6, 6, 3)) * (1 + round_) for _ in range(2)]
            quantize_graph(g, calib)
            assert np.array_equal(
                engine.run(g, x, mode="int8"), fresh.run(g, x, mode="int8")
            ), f"stale plan served on re-quantisation round {round_}"
            fresh.invalidate(g)

    def test_quantize_graph_keeps_float_plan(self):
        """Quantisation metadata does not touch the float plan, so the
        cached float plan survives (no wasted recompile)."""
        engine = InferenceEngine()
        g = tiny_cnn()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6, 6, 3))
        engine.run(g, x, mode="float")
        quantize_graph(g, [rng.normal(size=(6, 6, 3)) for _ in range(3)])
        engine.run(g, x, mode="float")
        assert engine.compile_count == 1


class TestBatchHandling:
    def test_single_sample_round_trips(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        out = engine.run(g, np.zeros((6, 6, 3)))
        assert out.shape == (5,)

    def test_batched_output_keeps_batch_axis(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        out = engine.run(g, np.zeros((7, 6, 6, 3)))
        assert out.shape == (7, 5)

    def test_wrong_shape_rejected(self):
        engine = InferenceEngine()
        with pytest.raises(ValueError, match="input shape"):
            engine.run(tiny_cnn(), np.zeros((5, 5, 3)))

    def test_run_batch_rejects_unbatched(self):
        engine = InferenceEngine()
        with pytest.raises(ValueError, match="input shape"):
            engine.run_batch(tiny_cnn(), np.zeros((6, 6, 3)))

    def test_unknown_mode_rejected(self):
        engine = InferenceEngine()
        with pytest.raises(ValueError, match="mode"):
            engine.run(tiny_cnn(), np.zeros((6, 6, 3)), mode="fp16")

    def test_return_acts_squeezed_for_single_sample(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        out, acts = engine.run(g, np.zeros((6, 6, 3)), return_acts=True)
        assert set(acts) == {n.name for n in g}
        assert acts["conv"].shape == (6, 6, 4)

    def test_return_acts_batched(self):
        engine = InferenceEngine()
        g = tiny_cnn()
        out, acts = engine.run_batch(
            g, np.zeros((3, 6, 6, 3)), return_acts=True
        )
        assert acts["conv"].shape == (3, 6, 6, 4)


@pytest.fixture(scope="module")
def quantized_models():
    rng = np.random.default_rng(0)
    models = {}
    for name, graph, shape in [
        ("resnet", resnet18_cifar(num_classes=10, seed=0), (32, 32, 3)),
        ("vit", vit_small(seed=0, depth=1), (224, 224, 3)),
    ]:
        calib = (rng.normal(size=shape) * 0.5).astype(np.float32)
        quantize_graph(graph, [calib])
        models[name] = (graph, shape)
    return models


class TestBatchedEquivalence:
    """Batched engine == per-sample executor, bit for bit."""

    @pytest.mark.parametrize("model", ["resnet", "vit"])
    @pytest.mark.parametrize("mode", ["float", "int8"])
    def test_bit_identical_to_per_sample(self, quantized_models, model, mode):
        graph, shape = quantized_models[model]
        rng = np.random.default_rng(7)
        xs = (rng.normal(size=(2, *shape)) * 0.5).astype(np.float32)
        engine = InferenceEngine()
        batched = engine.run_batch(graph, xs, mode=mode)
        per_sample = np.stack(
            [execute_graph(graph, x, mode=mode, engine=engine) for x in xs]
        )
        assert batched.dtype == per_sample.dtype
        assert np.array_equal(batched, per_sample)
        assert np.isfinite(batched).all()
