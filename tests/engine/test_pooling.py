"""Regression tests for size-driven pooling windows.

The seed executor read ``node.attrs["size"]`` but pooled with a
``stride``-sized window (``reshape(oy, stride, ox, stride, c)``), so
any graph with ``size != stride`` — e.g. the classic 3x3/stride-2
downsampling of ResNet-style CNNs — computed wrong activations.  The
engine windows with ``size`` and steps with ``stride``; these tests pin
that behaviour against a naive loop reference.
"""

import numpy as np
import pytest

from repro.compiler.executor import execute_graph
from repro.compiler.ir import Graph


def pool_graph(op, hw, c=2, size=2, stride=2):
    g = Graph("pool")
    x = g.add_input("in", (hw, hw, c))
    if op == "maxpool":
        g.add_maxpool("p", x, size=size, stride=stride)
    else:
        g.add_avgpool("p", x, size=size, stride=stride)
    return g


def naive_pool(x, op, size, stride):
    """Loop reference: size-sized windows, stride-sized steps, clipped
    at the feature-map edge (avg divides by the valid tap count)."""
    iy, ix, c = x.shape
    oy, ox = iy // stride, ix // stride
    out = np.zeros((oy, ox, c), dtype=np.float32)
    for y in range(oy):
        for xx in range(ox):
            win = x[
                y * stride : min(y * stride + size, iy),
                xx * stride : min(xx * stride + size, ix),
            ]
            out[y, xx] = win.max(axis=(0, 1)) if op == "maxpool" else win.mean(
                axis=(0, 1)
            )
    return out


class TestSizeDrivenWindows:
    @pytest.mark.parametrize("op", ["maxpool", "avgpool"])
    def test_size3_stride2_regression(self, op):
        """The headline bug: size=3, stride=2 must pool 3x3 windows."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(7, 7, 2)).astype(np.float32)
        g = pool_graph(op, hw=7, size=3, stride=2)
        got = execute_graph(g, x)
        want = naive_pool(x, op, size=3, stride=2)
        assert np.allclose(got, want, rtol=1e-6, atol=1e-6)

    def test_size3_stride2_differs_from_stride_window(self):
        """Proof the seed semantics were wrong: a value outside the
        stride-sized window but inside the size-sized one must appear
        in the max."""
        x = np.zeros((7, 7, 1), dtype=np.float32)
        x[2, 2, 0] = 9.0  # row/col 2: outside the seed's 2x2 window at (0, 0)
        g = pool_graph("maxpool", hw=7, c=1, size=3, stride=2)
        out = execute_graph(g, x)
        assert out[0, 0, 0] == 9.0

    @pytest.mark.parametrize("op", ["maxpool", "avgpool"])
    def test_windows_clipped_at_edge(self, op):
        """size=3 windows starting at the last stride step overrun a
        6x6 map; out-of-bounds taps are ignored (avg: valid count)."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 6, 3)).astype(np.float32)
        g = pool_graph(op, hw=6, c=3, size=3, stride=2)
        got = execute_graph(g, x)
        want = naive_pool(x, op, size=3, stride=2)
        assert got.shape == (3, 3, 3)
        assert np.allclose(got, want, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("op", ["maxpool", "avgpool"])
    def test_size_equals_stride_unchanged(self, op):
        """The classic 2x2/stride-2 case keeps its historical result."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(8, 8, 2)).astype(np.float32)
        g = pool_graph(op, hw=8, size=2, stride=2)
        view = x.reshape(4, 2, 4, 2, 2)
        want = view.max(axis=(1, 3)) if op == "maxpool" else view.mean(axis=(1, 3))
        assert np.allclose(execute_graph(g, x), want, rtol=1e-6, atol=1e-6)

    def test_batched_pooling_matches_per_sample(self):
        rng = np.random.default_rng(3)
        xs = rng.normal(size=(4, 7, 7, 2)).astype(np.float32)
        g = pool_graph("avgpool", hw=7, size=3, stride=2)
        batched = execute_graph(g, xs)
        per_sample = np.stack([execute_graph(g, x) for x in xs])
        assert np.array_equal(batched, per_sample)
