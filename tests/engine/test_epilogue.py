"""Engine-vs-kernel-library int8 epilogue cross-validation.

The engine and the kernel library share the *accumulator* maths — int8
activations x int8 weights summed in int32 — but diverge in the
epilogue: the engine dequantises with a float multiply
(``acc * (a_scale * w_scale)``) and adds a float bias, while the kernel
library requantises with an integer bias-add and a round-half-up
fixed-point shift (:mod:`repro.kernels.requant`), producing int8.

This module pins the shared part bit-exactly — the engine's
pre-epilogue int32 accumulators must equal
:func:`repro.kernels.conv_dense.conv2d_acc_dense` /
:func:`repro.kernels.conv_sparse.conv2d_acc_sparse` /
:func:`repro.kernels.fc_sparse.fc_acc_sparse` — and bounds the
divergent part: with a 16-bit fixed-point multiplier the two epilogues
agree within 1 LSB of the output scale (see docs/engine.md).

Accumulator recovery: plan steps run *before* the executor's float32
cast, so ``step.run`` returns float64 ``acc * deq + bias``; with
``|acc| < 2**31`` and float64's 52-bit mantissa, dividing the bias out
and rounding recovers the int32 accumulator exactly.
"""

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.engine import compile_plan, quantize_activations
from repro.kernels.conv_dense import conv2d_acc_dense
from repro.kernels.conv_sparse import conv2d_acc_sparse
from repro.kernels.fc_sparse import fc_acc_sparse
from repro.kernels.requant import QuantParams, requantize
from repro.models.quantize import quantize_graph
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_conv_weights, prune_fc_weights


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(0)
    g = Graph("epilogue")
    x = g.add_input("in", (8, 8, 16))
    wc = prune_conv_weights(
        (rng.normal(size=(8, 3, 3, 16)) * 0.4).astype(np.float32), FORMAT_1_8
    )
    x = g.add_conv2d(
        "conv", x, wc.astype(np.float32), bias=rng.normal(size=8).astype(np.float32)
    )
    x = g.add_global_avgpool("pool", x)
    wd = prune_fc_weights(
        (rng.normal(size=(6, 8)) * 0.4).astype(np.float32), FORMAT_1_8
    )
    g.add_dense("fc", x, wd.astype(np.float32))
    calib = [(rng.normal(size=(8, 8, 16)) * 0.5).astype(np.float32) for _ in range(3)]
    quantize_graph(g, calib)
    return g


def recover_acc(step_out: np.ndarray, deq: float, bias) -> np.ndarray:
    """Invert the engine's float epilogue back to int32 accumulators."""
    out = np.asarray(step_out, dtype=np.float64)
    if bias is not None:
        out = out - bias
    return np.rint(out / deq).astype(np.int32)


class TestAccumulatorIdentity:
    @pytest.mark.parametrize("sparse", [False, True])
    def test_conv_acc_matches_kernel_library(self, graph, sparse):
        node = graph.node("conv")
        a_scale = float(node.attrs["act_scale"])
        deq = a_scale * float(node.attrs["w_scale"])
        plan = compile_plan(graph, mode="int8", sparse=sparse)
        step = next(s for s in plan.steps if s.name == "conv")
        shape = plan.conv_shapes["conv"]

        rng = np.random.default_rng(1)
        x = (rng.normal(size=(8, 8, 16)) * 0.5).astype(np.float32)
        engine_acc = recover_acc(step.run(x[None])[0], deq, node.attrs["bias"])

        xq = quantize_activations(x, a_scale)
        wq = node.attrs["weights_q"]
        dense_acc = conv2d_acc_dense(xq, wq, shape)
        assert np.array_equal(engine_acc, dense_acc)

        packed = NMSparseMatrix.from_dense(wq.reshape(shape.k, -1), FORMAT_1_8)
        for method in ("gather", "dense"):
            sparse_acc = conv2d_acc_sparse(xq, packed, shape, method)
            assert np.array_equal(engine_acc, sparse_acc), method

    @pytest.mark.parametrize("sparse", [False, True])
    def test_fc_acc_matches_kernel_library(self, graph, sparse):
        node = graph.node("fc")
        a_scale = float(node.attrs["act_scale"])
        deq = a_scale * float(node.attrs["w_scale"])
        plan = compile_plan(graph, mode="int8", sparse=sparse)
        step = next(s for s in plan.steps if s.name == "fc")
        fc_shape = plan.fc_shapes["fc"]

        rng = np.random.default_rng(2)
        x = (rng.normal(size=8) * 0.2).astype(np.float32)
        engine_acc = recover_acc(step.run(x[None])[0], deq, node.attrs.get("bias"))

        xq = quantize_activations(x, a_scale)
        packed = NMSparseMatrix.from_dense(node.attrs["weights_q"], FORMAT_1_8)
        for method in ("gather", "dense"):
            kernel_acc = fc_acc_sparse(xq, packed, fc_shape, method)[0]
            assert np.array_equal(engine_acc, kernel_acc), method


class TestEpilogueDivergence:
    def test_fixed_point_requant_within_one_lsb_of_float(self, graph):
        """The documented magnitude of the epilogue difference.

        Quantising the engine's float conv output to an output scale
        ``s_out`` and running the kernel epilogue (integer bias +
        16-bit fixed-point multiplier, round-half-up) on the same
        accumulators must agree within 1 LSB of ``s_out``.
        """
        node = graph.node("conv")
        a_scale = float(node.attrs["act_scale"])
        deq = a_scale * float(node.attrs["w_scale"])
        bias = node.attrs["bias"]
        plan = compile_plan(graph, mode="int8")
        step = next(s for s in plan.steps if s.name == "conv")
        shape = plan.conv_shapes["conv"]

        rng = np.random.default_rng(3)
        x = (rng.normal(size=(8, 8, 16)) * 0.5).astype(np.float32)
        float_out = np.asarray(step.run(x[None])[0], dtype=np.float64)
        acc = conv2d_acc_dense(quantize_activations(x, a_scale), node.attrs["weights_q"], shape)

        s_out = float(np.abs(float_out).max()) / 127.0
        engine_q = np.clip(np.rint(float_out / s_out), -128, 127)
        bias_int = np.rint(np.asarray(bias, np.float64) / deq).astype(np.int64)
        kernel_q = requantize(
            acc, QuantParams.from_scale(deq / s_out), bias_int
        ).astype(np.float64)
        max_lsb = float(np.abs(engine_q - kernel_q).max())
        assert max_lsb <= 1.0, f"epilogues diverge by {max_lsb} LSB"
