"""Chrome-trace schema validation, local and CI-driven.

By default this validates a small in-process trace.  CI points it at a
real artifact instead: the serve-smoke job runs ``repro loadgen
--workers 2 --trace /tmp/serve_trace.json`` and then re-runs this test
with ``REPRO_TRACE_FILE=/tmp/serve_trace.json`` (and
``REPRO_TRACE_MIN_PIDS=3``) so the shipped trace — router plus two
worker replicas merged into one timeline — is held to the same schema
as the unit fixtures.
"""

import json
import os

import pytest

from repro.trace import Tracer, run_manifest, validate_trace

TRACE_FILE = os.environ.get("REPRO_TRACE_FILE")
MIN_PIDS = int(os.environ.get("REPRO_TRACE_MIN_PIDS", "1"))


def _local_payload(tmp_path):
    t = Tracer(process_name="schema-test")
    with t.span("plan:demo", cat="plan"):
        with t.span("conv0", cat="kernel", args={"kind": "conv"}):
            pass
    t.begin_async("request", 0, args={"model": "demo"})
    t.counter("queue_depth", {"samples": 1})
    t.end_async("request", 0, args={"ok": True})
    t.instant("flush", args={"reason": "deadline"})
    path = tmp_path / "trace.json"
    t.write(str(path), manifest=run_manifest({"command": "schema-test"}))
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    if TRACE_FILE:
        with open(TRACE_FILE) as fh:
            return json.load(fh)
    return _local_payload(tmp_path_factory.mktemp("trace"))


class TestTraceSchema:
    def test_payload_shape(self, payload):
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"], "trace is empty"
        assert payload["displayTimeUnit"] == "ms"

    def test_manifest_present(self, payload):
        manifest = payload["otherData"]
        for key in ("created", "host", "python", "pid", "argv"):
            assert key in manifest

    def test_events_validate_clean(self, payload):
        assert validate_trace(payload) == []

    def test_distinct_process_tracks(self, payload):
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert len(pids) >= MIN_PIDS
        named = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {e["pid"] for e in named} == pids

    def test_metadata_sorted_first(self, payload):
        events = payload["traceEvents"]
        metas = [i for i, e in enumerate(events) if e["ph"] == "M"]
        assert metas == list(range(len(metas)))

    @pytest.mark.skipif(
        not TRACE_FILE, reason="needs a real serve trace (CI artifact)"
    )
    def test_serve_trace_content(self, payload):
        events = payload["traceEvents"]
        assert any(e.get("cat") == "kernel" and e["ph"] == "B" for e in events)
        assert any(e.get("name") == "flush" for e in events)
        assert any(e.get("name") == "queue_depth" for e in events)
        assert any(
            e.get("name") == "rpc" and e["ph"] == "b" for e in events
        )
