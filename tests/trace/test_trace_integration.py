"""End-to-end tracing through the engine and serving layers.

The contract under test: one tracer threaded through the stack yields
a single well-formed timeline — per-layer kernel spans with
backend/format attribution from plan execution, compile/cache events
from the engine, async request/queue-wait/batch spans and flush
instants from the serving core, and (sharded) per-worker-process
tracks merged at drain.  And with tracing off, behaviour and outputs
are exactly the untraced ones.
"""

import asyncio

import numpy as np
import pytest

from repro.engine.bench import resnet_style_graph
from repro.engine.engine import InferenceEngine
from repro.serve.batcher import BatchPolicy
from repro.serve.server import ModelServer
from repro.trace import Tracer, validate_trace
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def graph():
    return resnet_style_graph()


def _events_by_name(tracer, name, ph=None):
    return [
        e
        for e in tracer.events()
        if e.get("name") == name and (ph is None or e["ph"] == ph)
    ]


class TestEngineTracing:
    def test_kernel_spans_carry_attribution(self, graph):
        t = Tracer()
        engine = InferenceEngine(trace=t)
        x = make_rng(0).normal(size=(2, 12, 12, 3)).astype(np.float32)
        engine.run_batch(graph, x, mode="float")
        assert validate_trace(t.events()) == []
        kernels = [
            e
            for e in t.events()
            if e.get("cat") == "kernel" and e["ph"] == "B"
        ]
        assert kernels, "no kernel spans recorded"
        for ev in kernels:
            args = ev["args"]
            assert args["kind"] in ("conv", "fc")
            assert "backend" in args and "format" in args
            assert args["weight_bytes"] > 0
            assert "shape" in args

    def test_cache_hit_miss_instants_and_stats(self, graph):
        t = Tracer()
        engine = InferenceEngine(trace=t)
        x = make_rng(0).normal(size=(1, 12, 12, 3)).astype(np.float32)
        engine.run_batch(graph, x, mode="float")
        engine.run_batch(graph, x, mode="float")
        assert len(_events_by_name(t, "plan_cache_miss")) == 1
        assert len(_events_by_name(t, "plan_cache_hit")) == 1
        assert len(_events_by_name(t, "compile_plan", ph="B")) == 1
        stats = engine.cache_stats()
        assert stats["misses"] == engine.compile_count == 1
        assert stats["hits"] == 1
        assert stats["compile_time_s"] > 0
        assert stats["per_key"]["float"]["hits"] == 1
        assert stats["per_key"]["float"]["misses"] == 1

    def test_cache_stats_without_tracer(self, graph):
        engine = InferenceEngine()
        x = make_rng(0).normal(size=(1, 12, 12, 3)).astype(np.float32)
        engine.run_batch(graph, x, mode="float")
        engine.run_batch(graph, x, mode="float")
        stats = engine.cache_stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "compile_time_s": stats["compile_time_s"],
            "per_key": {
                "float": {
                    "hits": 1,
                    "misses": 1,
                    "compile_time_s": stats["per_key"]["float"][
                        "compile_time_s"
                    ],
                }
            },
        }

    def test_traced_output_bit_identical_to_untraced(self, graph):
        x = make_rng(1).normal(size=(3, 12, 12, 3)).astype(np.float32)
        traced = InferenceEngine(trace=Tracer())
        plain = InferenceEngine()
        assert np.array_equal(
            traced.run_batch(graph, x, mode="float"),
            plain.run_batch(graph, x, mode="float"),
        )


class TestServerTracing:
    def test_request_batch_queue_events_one_process(self, graph):
        t = Tracer(process_name="test-server")

        async def run():
            server = ModelServer(
                policy=BatchPolicy(8, 2.0), workers=2, tracer=t
            )
            server.register("m", graph, "float")
            xs = make_rng(2).normal(size=(6, 12, 12, 3)).astype(np.float32)
            async with server:
                await asyncio.gather(
                    *(server.infer("m", x) for x in xs)
                )

        asyncio.run(run())
        assert validate_trace(t.events()) == []
        for name, count in (("request", 6), ("queue_wait", 6)):
            begins = [
                e
                for e in t.events()
                if e.get("name") == name and e["ph"] == "b"
            ]
            ends = [
                e
                for e in t.events()
                if e.get("name") == name and e["ph"] == "e"
            ]
            assert len(begins) == len(ends) == count
        flushes = _events_by_name(t, "flush")
        assert flushes and all(
            e["args"]["reason"] in ("full", "deadline", "close")
            for e in flushes
        )
        batches = [
            e
            for e in t.events()
            if e.get("name") == "batch" and e["ph"] == "b"
        ]
        assert batches
        depth = _events_by_name(t, "queue_depth")
        assert depth and all(
            isinstance(e["args"]["samples"], float) for e in depth
        )
        # Tracer attach: the registry's engine records into the same
        # buffer, so the per-layer kernel spans are present too.
        assert any(e.get("cat") == "kernel" for e in t.events())

    def test_untraced_server_unaffected(self, graph):
        async def run():
            server = ModelServer(policy=BatchPolicy(8, 2.0), workers=1)
            server.register("m", graph, "float")
            x = make_rng(3).normal(size=(12, 12, 3)).astype(np.float32)
            async with server:
                out = await server.infer("m", x)
            return out

        out = asyncio.run(run())
        assert np.isfinite(out).all()


class TestRouterTracing:
    def test_merged_timeline_has_distinct_worker_pids(self, graph):
        from repro.serve.router import RouterServer

        t = Tracer(process_name="router")

        async def run():
            server = RouterServer(
                policy=BatchPolicy(8, 2.0), workers=2, tracer=t
            )
            server.register("a", graph, "float")
            server.register("b", graph, "int8")
            xs = make_rng(4).normal(size=(8, 12, 12, 3)).astype(np.float32)
            async with server:
                await asyncio.gather(
                    *(
                        server.infer("a" if i % 2 else "b", x)
                        for i, x in enumerate(xs)
                    )
                )

        asyncio.run(run())
        events = t.events()
        assert validate_trace(events) == []
        pids = {e["pid"] for e in events}
        # Router + 2 worker replicas = 3 distinct process tracks.
        assert len(pids) == 3
        named = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(named.values()) >= {
            "router",
            "serve-shard-0",
            "serve-shard-1",
        }
        rpcs = [
            e for e in events if e.get("name") == "rpc" and e["ph"] == "b"
        ]
        assert len(rpcs) == 8
        # Worker-side spans really came home through the trace frame.
        worker_pids = pids - {t.pid}
        assert any(
            e.get("name") == "request" and e["pid"] in worker_pids
            for e in events
        )
        assert any(
            e.get("cat") == "kernel" and e["pid"] in worker_pids
            for e in events
        )


class TestWorkerSigint:
    def test_workers_survive_sigint_and_drain_traces(self, graph):
        # A terminal Ctrl-C signals the whole foreground process group.
        # Workers must ignore the SIGINT (shutdown is the router's
        # call), keep serving, and still ship their trace buffers home
        # at the router-orchestrated drain.
        import os
        import signal

        from repro.serve.router import RouterServer

        t = Tracer(process_name="router")

        async def run():
            server = RouterServer(
                policy=BatchPolicy(8, 2.0), workers=2, tracer=t
            )
            server.register("m", graph, "float")
            xs = make_rng(6).normal(size=(4, 12, 12, 3)).astype(np.float32)
            async with server:
                await server.infer("m", xs[0])
                for w in server._workers:
                    os.kill(w.proc.pid, signal.SIGINT)
                await asyncio.sleep(0.1)
                await asyncio.gather(
                    *(server.infer("m", x) for x in xs[1:])
                )

        asyncio.run(run())
        events = t.events()
        assert validate_trace(events) == []
        worker_pids = {e["pid"] for e in events} - {t.pid}
        assert len(worker_pids) == 2
        assert any(
            e.get("name") == "request" and e["pid"] in worker_pids
            for e in events
        )


class TestDescribeCacheStats:
    def test_tcp_describe_exposes_plan_cache(self, graph):
        from repro.serve.tcp import TcpServeClient, serve_tcp

        async def run():
            server = ModelServer(policy=BatchPolicy(8, 2.0), workers=1)
            server.register("m", graph, "float")
            x = make_rng(5).normal(size=(12, 12, 3)).astype(np.float32)
            async with server:
                tcp = await serve_tcp(server, "127.0.0.1", 0)
                host, port = tcp.sockets[0].getsockname()[:2]
                try:
                    async with TcpServeClient(host, port) as client:
                        await client.infer("m", x)
                        resp = await client.request({"op": "describe"})
                finally:
                    tcp.close()
                    await tcp.wait_closed()
            return resp

        resp = asyncio.run(run())
        cache = resp["engine"]["plan_cache"]
        assert cache["misses"] >= 1
        assert cache["hits"] >= 1  # the served request hit the warm plan
        assert "float" in cache["per_key"]
        assert cache["compile_time_s"] > 0
