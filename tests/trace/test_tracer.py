"""Unit tests for the Tracer ring buffer and Chrome-trace emission."""

import json
import threading
import tracemalloc

import pytest

import repro.trace.tracer as tracer_mod
from repro.trace import Tracer, run_manifest, trace_span, validate_trace


class TestSpans:
    def test_sync_span_emits_balanced_be(self):
        t = Tracer()
        with t.span("outer", cat="test", args={"k": 1}):
            with t.span("inner", cat="test"):
                pass
        evs = t.events()
        assert [e["ph"] for e in evs] == ["B", "B", "E", "E"]
        assert [e["name"] for e in evs[:2]] == ["outer", "inner"]
        assert evs[0]["args"] == {"k": 1}
        assert validate_trace(evs) == []

    def test_async_span_ids_are_pid_qualified(self):
        t = Tracer()
        t.begin_async("req", 7, args={"model": "m"})
        t.end_async("req", 7)
        b, e = t.events()
        assert b["id"] == e["id"] == f"{t.pid}.7"
        assert validate_trace(t.events()) == []

    def test_counter_and_instant(self):
        t = Tracer()
        t.counter("queue_depth", {"samples": 3})
        t.instant("flush", args={"reason": "full"})
        c, i = t.events()
        assert c["ph"] == "C" and c["args"] == {"samples": 3.0}
        assert i["ph"] == "i" and i["s"] == "t"
        assert validate_trace(t.events()) == []

    def test_trace_span_helper_tolerates_none(self):
        with trace_span(None, "noop"):
            pass  # must not raise

    def test_timestamps_are_wall_clock_microseconds(self):
        import time

        t = Tracer()
        before = time.time_ns() // 1_000
        with t.span("x"):
            pass
        after = time.time_ns() // 1_000
        for ev in t.events():
            assert before <= ev["ts"] <= after


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("a"):
            pass
        t.begin_async("r", 1)
        t.end_async("r", 1)
        t.counter("c", {"v": 1})
        t.instant("i")
        t.meta_process("p")
        assert len(t) == 0

    def test_disabled_span_is_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b")

    def test_disabled_span_allocates_nothing_in_tracer_module(self):
        # The overhead contract: with tracing off, entering/exiting
        # spans must not allocate (no per-call span objects).
        t = Tracer(enabled=False)
        filt = tracemalloc.Filter(True, tracer_mod.__file__)
        tracemalloc.start()
        try:
            for _ in range(50):
                with t.span("hot"):
                    pass
            snap = tracemalloc.take_snapshot().filter_traces([filt])
            allocated = sum(stat.size for stat in snap.statistics("lineno"))
        finally:
            tracemalloc.stop()
        assert allocated == 0


class TestRingBuffer:
    def test_capacity_bounds_and_counts_drops(self):
        t = Tracer(capacity=4)
        for i in range(10):
            t.instant(f"e{i}")
        assert len(t) == 4
        assert t.dropped == 6
        assert [e["name"] for e in t.events()] == ["e6", "e7", "e8", "e9"]

    def test_drain_clears_and_extend_splices(self):
        a = Tracer()
        a.instant("one")
        events = a.drain()
        assert len(a) == 0 and len(events) == 1
        b = Tracer()
        b.instant("two")
        b.extend(events)
        assert [e["name"] for e in b.events()] == ["two", "one"]

    def test_thread_safety_under_concurrent_emission(self):
        t = Tracer()
        n, threads = 200, 8

        def hammer():
            for i in range(n):
                with t.span("s"):
                    pass

        ts = [threading.Thread(target=hammer) for _ in range(threads)]
        for th in ts:
            th.start()
        for th in ts:
            th.join()
        assert len(t) == 2 * n * threads
        assert validate_trace(t.events()) == []


class TestExport:
    def test_to_chrome_sorts_metadata_first(self):
        t = Tracer()
        t.instant("later")
        t.meta_process("me")
        payload = t.to_chrome(manifest={"command": "test"})
        assert payload["traceEvents"][0]["ph"] == "M"
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["command"] == "test"

    def test_write_produces_loadable_json(self, tmp_path):
        t = Tracer(process_name="unit")
        with t.span("a", cat="k"):
            pass
        path = tmp_path / "trace.json"
        count = t.write(str(path), manifest=run_manifest({"x": 1}))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count == 3
        assert validate_trace(payload) == []
        assert payload["otherData"]["x"] == 1

    def test_run_manifest_core_fields(self):
        m = run_manifest()
        for key in ("created", "host", "platform", "python", "pid", "argv"):
            assert key in m


class TestValidate:
    def test_rejects_crossed_sync_spans(self):
        t = Tracer()
        pid, tid = 1, 1
        events = [
            {"ph": "B", "name": "a", "ts": 1, "pid": pid, "tid": tid},
            {"ph": "B", "name": "b", "ts": 2, "pid": pid, "tid": tid},
            {"ph": "E", "name": "a", "ts": 3, "pid": pid, "tid": tid},
            {"ph": "E", "name": "b", "ts": 4, "pid": pid, "tid": tid},
        ]
        assert any("not nested" in p for p in validate_trace(events))

    def test_rejects_unclosed_spans(self):
        events = [{"ph": "B", "name": "a", "ts": 1, "pid": 1, "tid": 1}]
        assert any("never closed" in p for p in validate_trace(events))

    def test_rejects_unmatched_async_end(self):
        events = [
            {
                "ph": "e",
                "name": "r",
                "cat": "serve",
                "id": "1.1",
                "ts": 1,
                "pid": 1,
                "tid": 1,
            }
        ]
        assert any("without matching b" in p for p in validate_trace(events))

    def test_rejects_non_numeric_counter(self):
        events = [
            {
                "ph": "C",
                "name": "c",
                "ts": 1,
                "pid": 1,
                "tid": 1,
                "args": {"v": "high"},
            }
        ]
        assert any("numeric" in p for p in validate_trace(events))

    def test_rejects_unknown_ph_and_missing_fields(self):
        problems = validate_trace(
            [{"ph": "Z"}, {"ph": "B", "name": "a"}]
        )
        assert any("unknown ph" in p for p in problems)
        assert any("missing" in p for p in problems)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
