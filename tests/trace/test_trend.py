"""Tests for TREND.json accumulation and the perfgate evaluation."""

import json

import pytest

from repro.trace.trend import (
    evaluate_trend,
    load_trend,
    merge_bench_results,
    save_trend,
)


def _bench_file(tmp_path, experiment, entries):
    path = tmp_path / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(entries))
    return path


def _entry(name, qps, ts, **extra):
    return {
        "name": name,
        "batch": 32,
        "qps": qps,
        "speedup": 2.0,
        "timestamp": ts,
        **extra,
    }


class TestMerge:
    def test_merge_creates_series_and_meta(self, tmp_path):
        _bench_file(
            tmp_path,
            "engine",
            [_entry("batched", 100.0, "2026-01-01T00:00:00+00:00", workers=2)],
        )
        trend = load_trend(tmp_path / "TREND.json")
        added = merge_bench_results(trend, tmp_path)
        assert added == 1
        points = trend["series"]["engine/batched"]
        assert points[0]["qps"] == 100.0
        assert points[0]["meta"] == {"workers": 2}

    def test_remerge_is_idempotent(self, tmp_path):
        _bench_file(
            tmp_path, "engine", [_entry("b", 50.0, "2026-01-01T00:00:00+00:00")]
        )
        trend = {"version": 1, "series": {}}
        assert merge_bench_results(trend, tmp_path) == 1
        assert merge_bench_results(trend, tmp_path) == 0
        assert len(trend["series"]["engine/b"]) == 1

    def test_points_sorted_by_timestamp(self, tmp_path):
        trend = {"version": 1, "series": {}}
        _bench_file(
            tmp_path, "e", [_entry("b", 2.0, "2026-01-02T00:00:00+00:00")]
        )
        merge_bench_results(trend, tmp_path)
        _bench_file(
            tmp_path, "e", [_entry("b", 1.0, "2026-01-01T00:00:00+00:00")]
        )
        merge_bench_results(trend, tmp_path)
        stamps = [p["timestamp"] for p in trend["series"]["e/b"]]
        assert stamps == sorted(stamps)

    def test_missing_core_key_raises(self, tmp_path):
        _bench_file(tmp_path, "e", [{"name": "x", "qps": 1.0}])
        with pytest.raises(ValueError, match="missing"):
            merge_bench_results({"version": 1, "series": {}}, tmp_path)

    def test_save_load_roundtrip(self, tmp_path):
        trend = {"version": 1, "series": {"a/b": []}}
        path = tmp_path / "sub" / "TREND.json"
        save_trend(trend, path)
        assert load_trend(path) == trend

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "TREND.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_trend(path)


def _series(*qps_values):
    return [
        {
            "timestamp": f"2026-01-{i + 1:02d}T00:00:00+00:00",
            "qps": q,
            "batch": 1,
            "speedup": 1.0,
            "meta": {},
        }
        for i, q in enumerate(qps_values)
    ]


class TestGate:
    def test_single_point_passes_trivially(self):
        verdicts = evaluate_trend(
            {"version": 1, "series": {"e/b": _series(100.0)}}
        )
        assert len(verdicts) == 1
        assert not verdicts[0].regressed
        assert verdicts[0].baseline_qps is None

    def test_within_threshold_passes(self):
        trend = {"version": 1, "series": {"e/b": _series(100.0, 100.0, 80.0)}}
        (v,) = evaluate_trend(trend, threshold_pct=30.0)
        assert not v.regressed
        assert v.baseline_qps == 100.0
        assert v.change_pct == pytest.approx(-20.0)

    def test_regression_beyond_threshold_fails(self):
        trend = {"version": 1, "series": {"e/b": _series(100.0, 100.0, 60.0)}}
        (v,) = evaluate_trend(trend, threshold_pct=30.0)
        assert v.regressed
        assert v.change_pct == pytest.approx(-40.0)

    def test_baseline_is_median_of_trailing_window(self):
        # Window 3 over the priors [90, 100, 110] -> median 100; the
        # older outlier (1000) must not poison the baseline.
        trend = {
            "version": 1,
            "series": {"e/b": _series(1000.0, 90.0, 100.0, 110.0, 65.0)},
        }
        (v,) = evaluate_trend(trend, threshold_pct=30.0, window=3)
        assert v.baseline_qps == 100.0
        assert v.regressed

    def test_improvement_never_regresses(self):
        trend = {"version": 1, "series": {"e/b": _series(50.0, 500.0)}}
        (v,) = evaluate_trend(trend, threshold_pct=30.0)
        assert not v.regressed
        assert v.change_pct == pytest.approx(900.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            evaluate_trend({"series": {}}, threshold_pct=0)
        with pytest.raises(ValueError):
            evaluate_trend({"series": {}}, window=0)


class TestCli:
    def test_perfgate_passes_then_fails_on_injected_regression(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        _bench_file(
            tmp_path, "e", [_entry("b", 100.0, "2026-01-01T00:00:00+00:00")]
        )
        trend_path = tmp_path / "TREND.json"
        rc = main(
            [
                "perfgate",
                "--results-dir",
                str(tmp_path),
                "--trend",
                str(trend_path),
                "--write",
            ]
        )
        assert rc == 0
        assert trend_path.exists()
        capsys.readouterr()
        # Inject a 70% QPS drop as a newer bench result.
        _bench_file(
            tmp_path, "e", [_entry("b", 30.0, "2026-01-02T00:00:00+00:00")]
        )
        rc = main(
            [
                "perfgate",
                "--results-dir",
                str(tmp_path),
                "--trend",
                str(trend_path),
            ]
        )
        assert rc == 1
        assert "regressed" in capsys.readouterr().err

    def test_perfgate_nothing_to_gate_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "perfgate",
                "--results-dir",
                str(tmp_path),
                "--trend",
                str(tmp_path / "TREND.json"),
            ]
        )
        assert rc == 2
        assert "nothing to gate" in capsys.readouterr().err

    def test_perfgate_on_repo_trend_passes(self):
        # The committed TREND.json must gate green (the CI perf-trend
        # job runs exactly this).
        from pathlib import Path

        from repro.cli import main

        repo = Path(__file__).resolve().parents[2]
        results = repo / "benchmarks" / "results"
        if not (results / "TREND.json").exists():
            pytest.skip("no committed TREND.json")
        assert (
            main(
                [
                    "perfgate",
                    "--results-dir",
                    str(results),
                    "--trend",
                    str(results / "TREND.json"),
                ]
            )
            == 0
        )
