"""Tests for the format-aware tiler (repro.compiler.tiling)."""

import pytest

from repro.compiler.tiling import bits_per_weight, tile_conv, tile_fc
from repro.hw.memory import VEGA_MEMORY
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8


class TestBitsPerWeight:
    def test_dense_8_bits(self):
        assert bits_per_weight(None, "dense-4x2", "conv") == 8.0

    def test_paper_example_1_4_isa(self):
        """Sec. 4.4: 1:4 with replicated offsets = 3 bits/dense weight."""
        assert bits_per_weight(FORMAT_1_4, "sparse-isa", "conv") == 3.0

    def test_fc_isa_no_duplication(self):
        assert bits_per_weight(FORMAT_1_4, "sparse-isa", "fc") == 2.5

    def test_naive_mode_always_8(self):
        assert bits_per_weight(FORMAT_1_16, "sparse-sw", "conv", False) == 8.0


class TestTileConv:
    def test_small_layer_untiled(self):
        shape = ConvShape(iy=8, ix=8, c=32, k=32)
        sol = tile_conv(shape)
        assert sol.n_tiles == 1
        assert sol.tile_bytes <= VEGA_MEMORY.l1.size_bytes

    def test_big_layer_tiles_over_k(self):
        shape = ConvShape(iy=8, ix=8, c=256, k=512)
        sol = tile_conv(shape)
        assert sol.n_tiles > 1
        assert sol.k_tile < 512

    def test_sparse_needs_fewer_tiles(self):
        """The paper's point: true bits/weight lets sparse layers fit
        larger tiles than an 8-bit-assuming tiler."""
        shape = ConvShape(iy=8, ix=8, c=256, k=512)
        dense = tile_conv(shape)
        sparse = tile_conv(shape, FORMAT_1_16, "sparse-sw")
        assert sparse.n_tiles <= dense.n_tiles
        assert sparse.n_tiles < dense.n_tiles

    def test_format_aware_beats_naive(self):
        shape = ConvShape(iy=8, ix=8, c=256, k=512)
        aware = tile_conv(shape, FORMAT_1_4, "sparse-isa", format_aware=True)
        naive = tile_conv(shape, FORMAT_1_4, "sparse-isa", format_aware=False)
        assert aware.n_tiles <= naive.n_tiles

    def test_tile_fits_l1(self):
        """ResNet18-like geometries (channel count shrinks the spatial
        dims, keeping the per-core im2col buffers inside L1)."""
        for iy, c, k in ((32, 64, 64), (16, 128, 128), (8, 256, 256), (4, 512, 512)):
            sol = tile_conv(ConvShape(iy=iy, ix=iy, c=c, k=k))
            assert sol.tile_bytes <= VEGA_MEMORY.l1.size_bytes

    def test_c512_at_large_spatial_infeasible(self):
        """At C=512 the im2col buffers alone eat ~74 kB of L1 (the
        paper notes tiles become very small already at C=256)."""
        with pytest.raises(ValueError, match="does not fit"):
            tile_conv(ConvShape(iy=16, ix=16, c=512, k=512))

    def test_infeasible_layer_raises(self):
        # A single output row with enormous channel count cannot fit.
        shape = ConvShape(iy=1, ix=1024, c=4096, k=1, fy=1, fx=1, p=0)
        with pytest.raises(ValueError, match="does not fit"):
            tile_conv(shape)


class TestTileFc:
    def test_small_fc_untiled(self):
        assert tile_fc(FcShape(c=256, k=64)).n_tiles == 1

    def test_large_fc_tiles(self):
        sol = tile_fc(FcShape(c=4096, k=512))
        assert sol.n_tiles > 1
        assert sol.k_tile * 4096 * 2 + 4096 + sol.k_tile <= VEGA_MEMORY.l1.size_bytes

    def test_sparse_fc_fits_more_channels(self):
        dense = tile_fc(FcShape(c=4096, k=512))
        sparse = tile_fc(FcShape(c=4096, k=512), FORMAT_1_8, "sparse-sw")
        assert sparse.k_tile >= dense.k_tile

    def test_dma_setups_property(self):
        sol = tile_fc(FcShape(c=4096, k=512))
        assert sol.dma_setups == sol.n_tiles
