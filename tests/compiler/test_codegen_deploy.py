"""Tests for lowering and deployment (repro.compiler.codegen / deploy)."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileConfig, lower_graph
from repro.compiler.deploy import deploy
from repro.compiler.ir import Graph
from repro.compiler.patterns import annotate_sparsity
from repro.sparsity.nm import FORMAT_1_8
from repro.sparsity.pruning import nm_prune


def mixed_graph(seed=0):
    """conv (sparse) -> relu -> conv (dense) -> pool -> fc (dense)."""
    rng = np.random.default_rng(seed)
    g = Graph("mixed")
    x = g.add_input("in", (8, 8, 16))
    w1 = nm_prune(rng.normal(size=(32, 9 * 16)), FORMAT_1_8)
    x = g.add_conv2d("sconv", x, w1.reshape(32, 3, 3, 16).astype(np.float32))
    x = g.add_elementwise("relu", "relu", x)
    w2 = rng.normal(size=(16, 1, 1, 32)).astype(np.float32)
    x = g.add_conv2d("dconv", x, w2, p=0)
    x = g.add_global_avgpool("pool", x)
    g.add_dense("fc", x, rng.normal(size=(10, 16)).astype(np.float32))
    return g


class TestLowering:
    def test_kernel_selection(self):
        g = mixed_graph()
        annotate_sparsity(g)
        plans = {p.node_name: p for p in lower_graph(g, CompileConfig())}
        assert plans["sconv"].variant == "sparse-sw"
        assert plans["dconv"].variant == "dense-4x2"
        assert plans["fc"].variant == "dense"

    def test_isa_config_switches_engine(self):
        g = mixed_graph()
        annotate_sparsity(g)
        plans = {
            p.node_name: p
            for p in lower_graph(g, CompileConfig(use_isa=True))
        }
        assert plans["sconv"].variant == "sparse-isa"

    def test_sparse_disabled_falls_back_dense(self):
        g = mixed_graph()
        annotate_sparsity(g)
        plans = {
            p.node_name: p
            for p in lower_graph(g, CompileConfig(use_sparse=False))
        }
        assert plans["sconv"].variant == "dense-4x2"

    def test_4x2_falls_back_when_k_odd(self):
        rng = np.random.default_rng(1)
        g = Graph()
        x = g.add_input("in", (4, 4, 8))
        g.add_conv2d("c", x, rng.normal(size=(6, 3, 3, 8)).astype(np.float32))
        annotate_sparsity(g)
        (plan,) = [p for p in lower_graph(g, CompileConfig()) if p.kind == "conv"]
        assert plan.variant == "dense-1x2"

    def test_fallback_ops_priced(self):
        g = mixed_graph()
        annotate_sparsity(g)
        plans = {p.node_name: p for p in lower_graph(g, CompileConfig())}
        assert plans["relu"].kind == "fallback"
        assert plans["relu"].cycles > 0
        assert plans["pool"].cycles > 0

    def test_every_plan_has_tiles_for_compute(self):
        g = mixed_graph()
        annotate_sparsity(g)
        for p in lower_graph(g, CompileConfig()):
            if p.kind in ("conv", "fc"):
                assert p.tiles is not None and p.tiles.n_tiles >= 1


class TestDeploy:
    def test_report_aggregates(self):
        report = deploy(mixed_graph())
        assert report.total_cycles > 0
        assert report.total_macs > 0
        assert 0 < report.macs_per_cycle
        assert report.weight_memory_bytes > 0

    def test_sparse_memory_below_dense(self):
        g = mixed_graph()
        sparse = deploy(g, CompileConfig())
        dense = deploy(g, CompileConfig(use_sparse=False))
        assert sparse.weight_memory_bytes < dense.weight_memory_bytes

    def test_isa_faster_than_sw(self):
        g = mixed_graph()
        sw = deploy(g, CompileConfig(use_isa=False))
        isa = deploy(g, CompileConfig(use_isa=True))
        assert isa.total_cycles < sw.total_cycles
        assert isa.speedup_vs(sw) > 1.0

    def test_non_interleaved_layout_costs_dma(self):
        g = mixed_graph()
        inter = deploy(g, CompileConfig(interleaved_layout=True))
        split = deploy(g, CompileConfig(interleaved_layout=False))
        assert split.total_cycles > inter.total_cycles

    def test_cycles_by_kind_partition(self):
        report = deploy(mixed_graph())
        assert sum(report.cycles_by_kind().values()) == pytest.approx(
            report.total_cycles
        )

    def test_layer_table_renders(self):
        text = deploy(mixed_graph()).layer_table().render()
        assert "sconv" in text and "sparse-sw" in text
