"""Tests for the interleaved L2 weight layout (repro.compiler.layout)."""

import numpy as np
import pytest

from repro.compiler.layout import build_interleaved_tiles, dma_cycles_for_layout
from repro.hw.memory import VEGA_MEMORY
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune


def make_mat(rows=16, cols=128, fmt=FORMAT_1_8, seed=0):
    rng = np.random.default_rng(seed)
    w = nm_prune(rng.integers(-128, 128, (rows, cols)).astype(np.int8), fmt)
    return NMSparseMatrix.from_dense(w, fmt)


class TestBuild:
    def test_one_blob_per_tile_interleaved(self):
        layout = build_interleaved_tiles(make_mat(), 4)
        assert len(layout.tiles) == 4
        assert layout.total_transfers == 4

    def test_two_blobs_per_tile_split(self):
        layout = build_interleaved_tiles(make_mat(), 4, interleaved=False)
        assert len(layout.tiles) == 8
        assert layout.total_transfers == 8

    def test_total_bytes_identical_between_policies(self):
        """Interleaving changes transaction count, not payload."""
        mat = make_mat()
        inter = build_interleaved_tiles(mat, 4, interleaved=True)
        split = build_interleaved_tiles(mat, 4, interleaved=False)
        assert inter.total_bytes == split.total_bytes

    def test_tile_content_is_values_then_offsets(self):
        mat = make_mat(rows=2, cols=64)
        layout = build_interleaved_tiles(mat, 2)
        (blob,) = layout.tiles
        from repro.kernels.microcode import pack_sparse_rows_sw

        vals, offs, nnz_pad = pack_sparse_rows_sw(mat)
        assert (blob[: vals.size] == vals.view(np.uint8)).all()
        assert (blob[vals.size :] == offs).all()

    def test_isa_engine_uses_duplicated_offsets(self):
        mat = make_mat(rows=2, cols=64)
        sw = build_interleaved_tiles(mat, 2, engine="sparse-sw")
        isa = build_interleaved_tiles(mat, 2, engine="sparse-isa")
        assert isa.total_bytes > sw.total_bytes

    def test_bad_k_tile_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            build_interleaved_tiles(make_mat(rows=16), 5)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            build_interleaved_tiles(make_mat(), 4, engine="bogus")


class TestDmaCost:
    def test_interleaved_saves_setup_cycles(self):
        mat = make_mat()
        dma = VEGA_MEMORY.dma
        inter = dma_cycles_for_layout(build_interleaved_tiles(mat, 4), dma)
        split = dma_cycles_for_layout(
            build_interleaved_tiles(mat, 4, interleaved=False), dma
        )
        assert split - inter == pytest.approx(4 * dma.setup_cycles)
