"""Tests for sparsity pattern recognition (repro.compiler.patterns)."""

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.compiler.patterns import annotate_sparsity, detect_format, sparsity_report
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8
from repro.sparsity.pruning import nm_prune


def pruned(rng, rows, cols, fmt):
    w = rng.normal(size=(rows, cols))
    return nm_prune(w, fmt)


class TestDetectFormat:
    def test_dense_matrix_none(self):
        rng = np.random.default_rng(0)
        assert detect_format(rng.normal(size=(4, 32))) is None

    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_detects_each_format(self, fmt):
        rng = np.random.default_rng(1)
        assert detect_format(pruned(rng, 8, 16 * fmt.m, fmt)) == fmt

    def test_prefers_most_compressive(self):
        """1:16-sparse weights also satisfy 1:8 and 1:4 — the matcher
        must pick 1:16 (largest memory win)."""
        rng = np.random.default_rng(2)
        w = pruned(rng, 4, 64, FORMAT_1_16)
        assert detect_format(w) == FORMAT_1_16

    def test_misaligned_columns_none(self):
        w = np.zeros((4, 20))
        w[:, 0] = 1.0
        assert detect_format(w) == FORMAT_1_4  # 20 % 4 == 0 only

    def test_all_zero_treated_dense(self):
        assert detect_format(np.zeros((4, 32))) is None

    def test_non_2d_none(self):
        assert detect_format(np.zeros(16)) is None


class TestAnnotate:
    def test_annotates_conv_and_dense(self):
        rng = np.random.default_rng(3)
        g = Graph()
        x = g.add_input("in", (8, 8, 16))
        wc = pruned(rng, 4, 9 * 16, FORMAT_1_8).reshape(4, 3, 3, 16)
        x = g.add_conv2d("conv", x, wc.astype(np.float32))
        x = g.add_global_avgpool("pool", x)
        wd = rng.normal(size=(10, 4)).astype(np.float32)
        g.add_dense("fc", x, wd)
        annotate_sparsity(g)
        assert g.node("conv").attrs["sparse_fmt"] == FORMAT_1_8
        assert g.node("fc").attrs["sparse_fmt"] is None

    def test_prefers_quantized_weights(self):
        """Annotation must look at weights_q when present (what the
        kernels actually execute)."""
        rng = np.random.default_rng(4)
        g = Graph()
        x = g.add_input("in", (16,))
        node_name = g.add_dense(
            "fc", x, rng.normal(size=(4, 16)).astype(np.float32)
        )
        wq = nm_prune(rng.normal(size=(4, 16)), FORMAT_1_4)
        g.node(node_name).attrs["weights_q"] = (wq * 10).astype(np.int8)
        annotate_sparsity(g)
        assert g.node("fc").attrs["sparse_fmt"] == FORMAT_1_4

    def test_explicit_format_not_clobbered(self):
        """A caller-forced format survives annotation even when
        detection would pick another (or none)."""
        rng = np.random.default_rng(6)
        g = Graph()
        x = g.add_input("in", (64,))
        # 1:16-sparse weights: detection would say FORMAT_1_16, but the
        # caller forces the coarser 1:4 packing.
        w = pruned(rng, 4, 64, FORMAT_1_16).astype(np.float32)
        g.add_dense("fc", x, w)
        g.node("fc").attrs["sparse_fmt"] = FORMAT_1_4
        annotate_sparsity(g)
        assert g.node("fc").attrs["sparse_fmt"] == FORMAT_1_4

    def test_explicit_force_dense_not_clobbered(self):
        """Pre-setting sparse_fmt=None forces a sparse-capable layer
        dense across annotation."""
        rng = np.random.default_rng(7)
        g = Graph()
        x = g.add_input("in", (64,))
        w = pruned(rng, 4, 64, FORMAT_1_8).astype(np.float32)
        g.add_dense("fc", x, w)
        g.node("fc").attrs["sparse_fmt"] = None
        annotate_sparsity(g)
        assert g.node("fc").attrs["sparse_fmt"] is None
        assert sparsity_report(g) == [("fc", "dense", "dense")]

    def test_report_rows(self):
        rng = np.random.default_rng(5)
        g = Graph()
        x = g.add_input("in", (16,))
        g.add_dense("fc", x, rng.normal(size=(4, 16)).astype(np.float32))
        annotate_sparsity(g)
        rows = sparsity_report(g)
        assert rows == [("fc", "dense", "dense")]
