"""Tests for the graph IR (repro.compiler.ir)."""

import numpy as np
import pytest

from repro.compiler.ir import Graph


def small_graph():
    g = Graph("t")
    x = g.add_input("in", (8, 8, 4))
    w = np.zeros((6, 3, 3, 4), dtype=np.float32)
    x = g.add_conv2d("c1", x, w, s=1, p=1)
    x = g.add_elementwise("r1", "relu", x)
    return g, x


class TestConstruction:
    def test_shapes_inferred(self):
        g, _ = small_graph()
        assert g.node("c1").out_shape == (8, 8, 6)

    def test_conv_stride_shape(self):
        g = Graph()
        x = g.add_input("in", (8, 8, 4))
        g.add_conv2d("c", x, np.zeros((2, 3, 3, 4), np.float32), s=2, p=1)
        assert g.node("c").out_shape == (4, 4, 2)

    def test_duplicate_name_rejected(self):
        g, _ = small_graph()
        with pytest.raises(ValueError, match="duplicate"):
            g.add_elementwise("r1", "relu", "c1")

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="unknown input"):
            g.add_elementwise("r", "relu", "nope")

    def test_channel_mismatch_rejected(self):
        g = Graph()
        x = g.add_input("in", (4, 4, 3))
        with pytest.raises(ValueError, match="channels"):
            g.add_conv2d("c", x, np.zeros((2, 3, 3, 5), np.float32))

    def test_dense_dim_mismatch_rejected(self):
        g = Graph()
        x = g.add_input("in", (16,))
        with pytest.raises(ValueError, match="weight cols"):
            g.add_dense("d", x, np.zeros((4, 8), np.float32))

    def test_add_shape_mismatch_rejected(self):
        g, _ = small_graph()
        g.add_input2 = None
        g2 = Graph()
        a = g2.add_input("in", (4, 4, 2))
        b = g2.add_conv2d("c", a, np.zeros((3, 1, 1, 2), np.float32), p=0)
        with pytest.raises(ValueError, match="mismatch"):
            g2.add_add("bad", a, b)

    def test_attention_validates_projections(self):
        g = Graph()
        x = g.add_input("in", (4, 8))
        wq = np.zeros((8, 8), np.float32)
        with pytest.raises(ValueError, match="wk"):
            g.add_attention("a", x, wq, np.zeros((8, 4), np.float32), wq, wq, heads=2)
        with pytest.raises(ValueError, match="heads"):
            g.add_attention("a", x, wq, wq, wq, wq, heads=3)

    def test_tokens_and_mean(self):
        g = Graph()
        x = g.add_input("in", (4, 4, 6))
        t = g.add_tokens("tok", x)
        assert g.node(t).out_shape == (16, 6)
        m = g.add_token_mean("mean", t)
        assert g.node(m).out_shape == (6,)

    def test_maxpool_shape(self):
        g = Graph()
        x = g.add_input("in", (8, 8, 3))
        g.add_maxpool("p", x)
        assert g.node("p").out_shape == (4, 4, 3)


class TestTraversal:
    def test_iteration_order(self):
        g, _ = small_graph()
        assert [n.name for n in g] == ["in", "c1", "r1"]

    def test_compute_nodes(self):
        g, _ = small_graph()
        assert [n.name for n in g.compute_nodes()] == ["c1"]

    def test_validate_passes(self):
        g, _ = small_graph()
        g.validate()

    def test_validate_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Graph().validate()

    def test_len(self):
        g, _ = small_graph()
        assert len(g) == 3
