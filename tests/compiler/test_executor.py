"""Tests for functional graph execution (repro.compiler.executor)."""

import numpy as np
import pytest

from repro.compiler.executor import execute_graph
from repro.compiler.ir import Graph
from repro.models.quantize import quantize_graph


def tiny_cnn(seed=0):
    rng = np.random.default_rng(seed)
    g = Graph("tiny")
    x = g.add_input("in", (6, 6, 3))
    w = (rng.normal(size=(4, 3, 3, 3)) * 0.4).astype(np.float32)
    x = g.add_conv2d("conv", x, w, bias=np.zeros(4, np.float32))
    x = g.add_elementwise("relu", "relu", x)
    x = g.add_global_avgpool("pool", x)
    g.add_dense("fc", x, (rng.normal(size=(5, 4)) * 0.4).astype(np.float32))
    return g


def tiny_transformer(seed=1):
    rng = np.random.default_rng(seed)
    g = Graph("tiny-attn")
    x = g.add_input("in", (6, 8))
    ones = np.ones(8, np.float32)
    zeros = np.zeros(8, np.float32)
    x = g.add_layernorm("ln", x, ones, zeros)
    w = lambda: (rng.normal(size=(8, 8)) * 0.3).astype(np.float32)
    x = g.add_attention("attn", x, w(), w(), w(), w(), heads=2)
    x = g.add_elementwise("gelu", "gelu", x)
    x = g.add_token_mean("mean", x)
    g.add_dense("fc", x, (rng.normal(size=(3, 8)) * 0.3).astype(np.float32))
    return g


class TestFloatExecution:
    def test_cnn_forward_shape(self):
        g = tiny_cnn()
        rng = np.random.default_rng(2)
        out = execute_graph(g, rng.normal(size=(6, 6, 3)))
        assert out.shape == (5,)

    def test_conv_matches_manual(self):
        g = Graph()
        x_name = g.add_input("in", (3, 3, 1))
        w = np.zeros((1, 3, 3, 1), np.float32)
        w[0, 1, 1, 0] = 2.0  # pure center tap: out = 2 * x
        g.add_conv2d("c", x_name, w)
        x = np.arange(9, dtype=np.float64).reshape(3, 3, 1)
        out = execute_graph(g, x)
        assert np.allclose(out[..., 0], 2 * x[..., 0])

    def test_residual_add(self):
        g = Graph()
        a = g.add_input("in", (2, 2, 1))
        b = g.add_elementwise("r", "relu", a)
        g.add_add("sum", a, b)
        x = np.array([[[1.0], [-2.0]], [[3.0], [-4.0]]])
        out = execute_graph(g, x)
        assert np.allclose(out, x + np.maximum(x, 0))

    def test_attention_runs(self):
        g = tiny_transformer()
        rng = np.random.default_rng(3)
        out = execute_graph(g, rng.normal(size=(6, 8)))
        assert out.shape == (3,)
        assert np.isfinite(out).all()

    def test_layernorm_normalises(self):
        g = Graph()
        x_name = g.add_input("in", (4, 8))
        g.add_layernorm("ln", x_name, np.ones(8, np.float32), np.zeros(8, np.float32))
        rng = np.random.default_rng(4)
        out = execute_graph(g, rng.normal(2.0, 3.0, size=(4, 8)))
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1, atol=1e-2)

    def test_maxpool(self):
        g = Graph()
        x_name = g.add_input("in", (2, 2, 1))
        g.add_maxpool("p", x_name, size=2, stride=2)
        out = execute_graph(g, np.array([[[1.0], [5.0]], [[3.0], [2.0]]]))
        assert out.reshape(-1).tolist() == [5.0]

    def test_wrong_input_shape_rejected(self):
        g = tiny_cnn()
        with pytest.raises(ValueError, match="input shape"):
            execute_graph(g, np.zeros((5, 5, 3)))

    def test_unknown_mode_rejected(self):
        g = tiny_cnn()
        with pytest.raises(ValueError, match="mode"):
            execute_graph(g, np.zeros((6, 6, 3)), mode="fp16")

    def test_return_acts(self):
        g = tiny_cnn()
        out, acts = execute_graph(
            g, np.zeros((6, 6, 3)), return_acts=True
        )
        assert set(acts) == {n.name for n in g}


class TestInt8Execution:
    def test_quantized_close_to_float(self):
        g = tiny_cnn()
        rng = np.random.default_rng(5)
        samples = [rng.normal(size=(6, 6, 3)) for _ in range(4)]
        quantize_graph(g, samples)
        x = rng.normal(size=(6, 6, 3))
        f = execute_graph(g, x, mode="float")
        q = execute_graph(g, x, mode="int8")
        scale = np.abs(f).max() + 1e-9
        assert np.abs(f - q).max() / scale < 0.08

    def test_int8_without_metadata_falls_back(self):
        """A graph that was never quantised executes the float path."""
        g = tiny_cnn()
        x = np.random.default_rng(6).normal(size=(6, 6, 3))
        assert np.allclose(
            execute_graph(g, x, mode="int8"), execute_graph(g, x, mode="float")
        )
