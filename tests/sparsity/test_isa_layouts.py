"""ISA-layout pack / decode / serialize round-trips.

The ISA kernels consume reorganised OFFSETS streams — duplicated
entries for conv (Sec. 4.1.3), channel-pair interleaving for FC
(Sec. 4.2.3) — built by the layout packers in
:mod:`repro.kernels.microcode`.  ``NMSparseMatrix.from_packed`` is
their inverse; these tests pin the round trip for every format,
including underfull blocks (explicit stored zeros), all-zero rows,
float32 values, and the loud rejection of corrupt / mis-tagged
streams.  The serialisation artifact format carries the same layouts.
"""

import numpy as np
import pytest

from repro.kernels import microcode as mc
from repro.sparsity.nm import (
    FORMAT_1_16,
    FORMAT_1_4,
    FORMAT_1_8,
    NMSparseMatrix,
)
from repro.sparsity.pruning import nm_prune
from repro.sparsity.serialize import load_nm_weights, save_nm_weights

FORMATS = [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]


def make_mat(fmt, rows=6, blocks=7, seed=0, dtype=np.int8, underfull=False):
    rng = np.random.default_rng(seed)
    if dtype == np.int8:
        w = rng.integers(-128, 128, (rows, blocks * fmt.m)).astype(np.int8)
    else:
        w = (rng.normal(size=(rows, blocks * fmt.m)) * 2).astype(np.float32)
    w = nm_prune(w, fmt)
    if underfull:
        # Zero out some kept values: blocks with *fewer* than N
        # non-zeros store explicit zeros (offset = position).
        w[:, :: fmt.m] = 0
        w[rows // 2] = 0  # one all-zero row
    return NMSparseMatrix.from_dense(w.astype(dtype), fmt, dtype=dtype)


PACKERS = {
    "sw": mc.pack_sparse_rows_sw,
    "isa-conv": mc.pack_sparse_rows_isa_conv,
    "isa-fc": mc.pack_sparse_rows_isa_fc,
}


class TestFromPackedRoundtrip:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("layout", ["sw", "isa-conv", "isa-fc"])
    @pytest.mark.parametrize("underfull", [False, True])
    def test_roundtrip(self, fmt, layout, underfull):
        mat = make_mat(fmt, underfull=underfull)
        flat, packed, nnz_pad = PACKERS[layout](mat)
        decoded = NMSparseMatrix.from_packed(
            flat, packed, fmt, mat.dense_cols, mat.rows, layout
        )
        assert np.array_equal(decoded.values, mat.values)
        assert np.array_equal(decoded.offsets, mat.offsets)
        assert np.array_equal(decoded.to_dense(), mat.to_dense())

    @pytest.mark.parametrize("layout", ["sw", "isa-conv", "isa-fc"])
    def test_float_values_roundtrip(self, layout):
        mat = make_mat(FORMAT_1_8, dtype=np.float32)
        flat, packed, nnz_pad = PACKERS[layout](mat)
        assert flat.dtype == np.float32  # padding preserves the dtype
        decoded = NMSparseMatrix.from_packed(
            flat, packed, FORMAT_1_8, mat.dense_cols, mat.rows, layout
        )
        assert decoded.values.dtype == np.float32
        assert np.array_equal(decoded.to_dense(), mat.to_dense())

    def test_isa_conv_duplication_verified(self):
        """A stream whose entry pairs disagree is not an ISA conv
        layout — decoding must reject it, not guess."""
        mat = make_mat(FORMAT_1_8)
        flat, packed, nnz_pad = PACKERS["sw"](mat)
        # The SW stream has the right byte count for a matrix with half
        # the padded NNZ per row — force the shape mismatch instead:
        with pytest.raises(ValueError, match="bytes"):
            NMSparseMatrix.from_packed(
                flat, packed, FORMAT_1_8, mat.dense_cols, mat.rows, "isa-conv"
            )
        # A right-sized but non-duplicated stream is rejected loudly.
        dup_flat, dup_packed, _ = PACKERS["isa-conv"](mat)
        tampered = dup_packed.copy()
        tampered[0] ^= 0x0F  # break the first duplicated pair
        with pytest.raises(ValueError, match="duplicated"):
            NMSparseMatrix.from_packed(
                dup_flat, tampered, FORMAT_1_8, mat.dense_cols, mat.rows, "isa-conv"
            )

    def test_nonzero_padding_rejected(self):
        mat = make_mat(FORMAT_1_8)
        flat, packed, nnz_pad = PACKERS["isa-conv"](mat)
        values = flat.reshape(mat.rows, nnz_pad).copy()
        if values.shape[1] == mat.values.shape[1]:
            pytest.skip("no padding for this geometry")
        values[0, -1] = 7  # corrupt a pad entry
        with pytest.raises(ValueError, match="padding"):
            NMSparseMatrix.from_packed(
                values, packed, FORMAT_1_8, mat.dense_cols, mat.rows, "isa-conv"
            )

    def test_isa_fc_needs_even_rows(self):
        mat = make_mat(FORMAT_1_8, rows=5)
        flat, packed, nnz_pad = PACKERS["sw"](mat)
        with pytest.raises(ValueError, match="even"):
            NMSparseMatrix.from_packed(
                flat, packed, FORMAT_1_8, mat.dense_cols, mat.rows, "isa-fc"
            )

    def test_unknown_layout_rejected(self):
        mat = make_mat(FORMAT_1_8)
        flat, packed, _ = PACKERS["sw"](mat)
        with pytest.raises(ValueError, match="layout"):
            NMSparseMatrix.from_packed(
                flat, packed, FORMAT_1_8, mat.dense_cols, mat.rows, "turbo"
            )


class TestSerializeKernelLayouts:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_mixed_layout_artifact_roundtrips(self, tmp_path, fmt):
        layers = {
            "conv1": make_mat(fmt, rows=6, seed=1),
            "fc1": make_mat(fmt, rows=4, seed=2),
            "plain": make_mat(fmt, rows=3, seed=3),
        }
        path = tmp_path / "w.npz"
        save_nm_weights(
            path, layers, layouts={"conv1": "isa-conv", "fc1": "isa-fc"}
        )
        loaded = load_nm_weights(path)
        for name, mat in layers.items():
            assert np.array_equal(
                loaded[name].to_dense(), mat.to_dense()
            ), name
            assert loaded[name].fmt == mat.fmt

    def test_underfull_blocks_survive_isa_artifact(self, tmp_path):
        mat = make_mat(FORMAT_1_8, underfull=True)
        path = tmp_path / "w.npz"
        save_nm_weights(path, {"l": mat}, layouts={"l": "isa-conv"})
        assert np.array_equal(
            load_nm_weights(path)["l"].to_dense(), mat.to_dense()
        )

    def test_float_isa_artifact(self, tmp_path):
        mat = make_mat(FORMAT_1_4, dtype=np.float32)
        path = tmp_path / "w.npz"
        save_nm_weights(path, {"l": mat}, layouts={"l": "isa-conv"})
        loaded = load_nm_weights(path)["l"]
        assert loaded.values.dtype == np.float32
        assert np.array_equal(loaded.to_dense(), mat.to_dense())

    def test_logical_save_stays_v1_compatible(self, tmp_path):
        """A save without layouts carries no layout keys — the exact
        PR-1 artifact shape."""
        mat = make_mat(FORMAT_1_8)
        path = tmp_path / "w.npz"
        save_nm_weights(path, {"l": mat})
        with np.load(path, allow_pickle=False) as data:
            assert "l/layout" not in data
            assert len(data["l/meta"]) == 3

    def test_layouts_naming_unknown_layer_rejected(self, tmp_path):
        mat = make_mat(FORMAT_1_8)
        with pytest.raises(ValueError, match="unsaved"):
            save_nm_weights(
                tmp_path / "w.npz", {"l": mat}, layouts={"ghost": "isa-conv"}
            )

    def test_unknown_layout_tag_rejected(self, tmp_path):
        mat = make_mat(FORMAT_1_8)
        with pytest.raises(ValueError, match="layout"):
            save_nm_weights(
                tmp_path / "w.npz", {"l": mat}, layouts={"l": "turbo"}
            )

    def test_odd_k_isa_fc_save_fails_loudly(self, tmp_path):
        mat = make_mat(FORMAT_1_8, rows=5)
        with pytest.raises(ValueError, match="even"):
            save_nm_weights(
                tmp_path / "w.npz", {"l": mat}, layouts={"l": "isa-fc"}
            )
