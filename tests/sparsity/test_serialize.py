"""Tests for N:M weight serialisation (repro.sparsity.serialize)."""

import numpy as np
import pytest

from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune
from repro.sparsity.serialize import load_nm_weights, save_nm_weights


def make_mat(fmt, rows=8, blocks=6, seed=0):
    rng = np.random.default_rng(seed)
    w = nm_prune(
        rng.integers(-128, 128, (rows, blocks * fmt.m)).astype(np.int8), fmt
    )
    return NMSparseMatrix.from_dense(w, fmt)


class TestRoundtrip:
    def test_single_layer(self, tmp_path):
        mat = make_mat(FORMAT_1_8)
        path = tmp_path / "w.npz"
        save_nm_weights(path, {"layer0": mat})
        loaded = load_nm_weights(path)["layer0"]
        assert (loaded.to_dense() == mat.to_dense()).all()
        assert loaded.fmt == mat.fmt
        assert loaded.dense_cols == mat.dense_cols

    def test_multiple_layers_mixed_formats(self, tmp_path):
        layers = {
            "a": make_mat(FORMAT_1_4, seed=1),
            "b": make_mat(FORMAT_1_8, seed=2),
            "c": make_mat(FORMAT_1_16, seed=3),
        }
        path = tmp_path / "model.npz"
        save_nm_weights(path, layers)
        loaded = load_nm_weights(path)
        assert set(loaded) == set(layers)
        for name in layers:
            assert (loaded[name].to_dense() == layers[name].to_dense()).all()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nothing"):
            save_nm_weights(tmp_path / "x.npz", {})

    def test_slash_in_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="may not contain"):
            save_nm_weights(tmp_path / "x.npz", {"a/b": make_mat(FORMAT_1_8)})

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro"):
            load_nm_weights(path)

    def test_file_size_reflects_compression(self, tmp_path):
        """The artifact must be far smaller than dense int8 storage."""
        mat = make_mat(FORMAT_1_16, rows=64, blocks=32)
        path = tmp_path / "w.npz"
        save_nm_weights(path, {"l": mat})
        assert path.stat().st_size < mat.dense_bytes()
