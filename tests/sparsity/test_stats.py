"""Tests for sparsity statistics (repro.sparsity.stats)."""

import numpy as np
import pytest

from repro.sparsity.nm import FORMAT_1_4, FORMAT_1_8
from repro.sparsity.stats import is_nm_sparse, nm_block_histogram, sparsity_ratio


class TestSparsityRatio:
    def test_all_zero(self):
        assert sparsity_ratio(np.zeros((3, 4))) == 1.0

    def test_no_zero(self):
        assert sparsity_ratio(np.ones((3, 4))) == 0.0

    def test_half(self):
        w = np.array([0, 1, 0, 2])
        assert sparsity_ratio(w) == 0.5

    def test_empty(self):
        assert sparsity_ratio(np.array([])) == 0.0


class TestIsNmSparse:
    def test_accepts_compliant(self):
        w = np.zeros((2, 8))
        w[:, 0] = 1
        assert is_nm_sparse(w, FORMAT_1_4)

    def test_rejects_violation(self):
        w = np.zeros((1, 4))
        w[0, :2] = 1
        assert not is_nm_sparse(w, FORMAT_1_4)

    def test_rejects_misaligned(self):
        assert not is_nm_sparse(np.zeros((1, 6)), FORMAT_1_4)

    def test_underfull_blocks_ok(self):
        assert is_nm_sparse(np.zeros((2, 16)), FORMAT_1_8)


class TestHistogram:
    def test_counts(self):
        w = np.array([[1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0]])
        hist = nm_block_histogram(w, 4)
        assert hist[0] == 1 and hist[1] == 1 and hist[2] == 1

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            nm_block_histogram(np.zeros(10), 4)

    def test_total_blocks(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 32))
        hist = nm_block_histogram(w, FORMAT_1_8.m)
        assert hist.sum() == 4 * 32 // 8
