"""Tests for the N:M packed format (repro.sparsity.nm)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.nm import (
    FORMAT_1_16,
    FORMAT_1_4,
    FORMAT_1_8,
    NMFormat,
    NMSparseMatrix,
    SUPPORTED_FORMATS,
)
from repro.sparsity.pruning import nm_prune
from repro.utils.bitpack import unpack_bits


class TestNMFormat:
    def test_names(self):
        assert FORMAT_1_4.name == "1:4"
        assert FORMAT_1_8.name == "1:8"
        assert FORMAT_1_16.name == "1:16"

    def test_supported_registry(self):
        assert set(SUPPORTED_FORMATS) == {"1:4", "1:8", "1:16"}

    def test_sparsity_values(self):
        assert FORMAT_1_4.sparsity == 0.75
        assert FORMAT_1_8.sparsity == 0.875
        assert FORMAT_1_16.sparsity == 0.9375

    def test_offset_bits_rounded_to_power_of_two(self):
        assert FORMAT_1_4.offset_bits == 2
        assert FORMAT_1_8.offset_bits == 4  # ceil(log2 8)=3, rounded to 4
        assert FORMAT_1_16.offset_bits == 4

    def test_paper_memory_reductions_sw(self):
        """Sec. 4: 68.75% / 81.25% / 90.62% for the SW layouts."""
        assert FORMAT_1_4.weight_memory_reduction() == pytest.approx(0.6875)
        assert FORMAT_1_8.weight_memory_reduction() == pytest.approx(0.8125)
        assert FORMAT_1_16.weight_memory_reduction() == pytest.approx(0.90625)

    def test_paper_memory_reductions_isa(self):
        """Sec. 4.1.3: 62.5% / 75% / 87.5% with duplicated offsets."""
        assert FORMAT_1_4.weight_memory_reduction(True) == pytest.approx(0.625)
        assert FORMAT_1_8.weight_memory_reduction(True) == pytest.approx(0.75)
        assert FORMAT_1_16.weight_memory_reduction(True) == pytest.approx(0.875)

    def test_match_tiling_bits_example(self):
        """Sec. 4.4: 1:4 with replicated offsets = 3 bits per dense weight."""
        assert FORMAT_1_4.bits_per_dense_weight(True) == pytest.approx(3.0)

    def test_invalid_formats_rejected(self):
        for n, m in ((0, 4), (4, 4), (5, 4), (1, 1)):
            with pytest.raises(ValueError):
                NMFormat(n, m)


def _random_nm_dense(rng, rows, cols, fmt):
    w = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
    return nm_prune(w, fmt)


class TestNMSparseMatrix:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_roundtrip(self, fmt):
        rng = np.random.default_rng(0)
        dense = _random_nm_dense(rng, 16, fmt.m * 8, fmt)
        mat = NMSparseMatrix.from_dense(dense, fmt)
        assert (mat.to_dense() == dense).all()

    def test_rejects_violating_pattern(self):
        dense = np.ones((2, 8), dtype=np.int8)  # 8 nnz per 1:8 block
        with pytest.raises(ValueError, match="violate"):
            NMSparseMatrix.from_dense(dense, FORMAT_1_8)

    def test_rejects_misaligned_columns(self):
        dense = np.zeros((2, 9), dtype=np.int8)
        with pytest.raises(ValueError, match="multiple"):
            NMSparseMatrix.from_dense(dense, FORMAT_1_8)

    def test_allows_underfull_blocks(self):
        """Blocks with zero non-zeros are legal (explicit zero stored)."""
        dense = np.zeros((1, 16), dtype=np.int8)
        dense[0, 3] = 5  # one block has a value, the other is empty
        mat = NMSparseMatrix.from_dense(dense, FORMAT_1_8)
        assert (mat.to_dense() == dense).all()

    def test_measured_reduction_matches_analytic(self):
        rng = np.random.default_rng(1)
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            dense = _random_nm_dense(rng, 8, fmt.m * 16, fmt)
            mat = NMSparseMatrix.from_dense(dense, fmt)
            assert mat.memory_reduction() == pytest.approx(
                fmt.weight_memory_reduction()
            )
            assert mat.memory_reduction(True) == pytest.approx(
                fmt.weight_memory_reduction(True)
            )

    def test_packed_offsets_roundtrip(self):
        rng = np.random.default_rng(2)
        fmt = FORMAT_1_8
        dense = _random_nm_dense(rng, 4, 64, fmt)
        mat = NMSparseMatrix.from_dense(dense, fmt)
        packed = mat.packed_offsets()
        row0 = unpack_bits(packed[0], fmt.offset_bits, mat.offsets.shape[1])
        assert (row0 == mat.offsets[0]).all()

    def test_packed_offsets_duplicated(self):
        rng = np.random.default_rng(3)
        fmt = FORMAT_1_16
        dense = _random_nm_dense(rng, 2, 64, fmt)
        mat = NMSparseMatrix.from_dense(dense, fmt)
        dup = mat.packed_offsets(duplicate=True)
        fields = unpack_bits(dup[0], 4, 2 * mat.offsets.shape[1])
        assert (fields[0::2] == fields[1::2]).all()
        assert (fields[0::2] == mat.offsets[0]).all()

    def test_fc_interleaved_offsets(self):
        """Fig. 6: o0_ch0, o0_ch1, o1_ch0, o1_ch1, ..."""
        rng = np.random.default_rng(4)
        fmt = FORMAT_1_8
        dense = _random_nm_dense(rng, 2, 64, fmt)
        mat = NMSparseMatrix.from_dense(dense, fmt)
        inter = mat.packed_offsets_fc_interleaved()
        assert inter.shape[0] == 1
        fields = unpack_bits(inter[0], 4, 2 * mat.offsets.shape[1])
        assert (fields[0::2] == mat.offsets[0]).all()
        assert (fields[1::2] == mat.offsets[1]).all()

    def test_fc_interleave_rejects_odd_rows(self):
        dense = np.zeros((3, 16), dtype=np.int8)
        mat = NMSparseMatrix.from_dense(dense, FORMAT_1_8)
        with pytest.raises(ValueError, match="even"):
            mat.packed_offsets_fc_interleaved()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NMSparseMatrix(
                np.zeros((2, 3), dtype=np.int8),
                np.zeros((2, 4), dtype=np.uint8),
                FORMAT_1_8,
                24,
            )
        with pytest.raises(ValueError, match="offset out of block"):
            NMSparseMatrix(
                np.zeros((1, 2), dtype=np.int8),
                np.full((1, 2), 9, dtype=np.uint8),
                FORMAT_1_8,
                16,
            )


class TestFloatValues:
    """The float32-valued packed variant (float serving)."""

    def test_roundtrip_preserves_float_bits(self):
        rng = np.random.default_rng(0)
        dense = nm_prune(
            rng.normal(size=(6, 64)).astype(np.float32), FORMAT_1_8
        )
        mat = NMSparseMatrix.from_dense(dense, FORMAT_1_8, dtype=np.float32)
        assert mat.values.dtype == np.float32
        out = mat.to_dense()
        assert out.dtype == np.float32
        assert np.array_equal(out, dense)  # bit-exact round trip

    def test_byte_accounting_uses_itemsize(self):
        rng = np.random.default_rng(1)
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            dense = nm_prune(
                rng.normal(size=(4, fmt.m * 8)).astype(np.float32), fmt
            )
            mat = NMSparseMatrix.from_dense(dense, fmt, dtype=np.float32)
            i8 = NMSparseMatrix.from_dense(
                nm_prune(
                    rng.integers(-128, 128, size=dense.shape).astype(np.int8),
                    fmt,
                ),
                fmt,
            )
            assert mat.value_bytes == 4 and i8.value_bytes == 1
            assert mat.values_bytes() == 4 * mat.values.size
            assert mat.dense_bytes() == 4 * i8.dense_bytes()
            assert mat.offsets_bytes() == i8.offsets_bytes()  # layout shared
            assert mat.total_bytes() == fmt.packed_bytes(
                mat.rows, mat.dense_cols, value_bytes=4
            )

    def test_default_dtype_narrows_to_int8(self):
        """Backwards compatibility: without an explicit dtype, float
        inputs are narrowed to int8 exactly as before."""
        dense = np.zeros((2, 16), np.float64)
        dense[:, 3] = 5.7
        mat = NMSparseMatrix.from_dense(dense, FORMAT_1_8)
        assert mat.values.dtype == np.int8
        assert (mat.to_dense()[:, 3] == 5).all()

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            NMSparseMatrix.from_dense(
                np.zeros((2, 16)), FORMAT_1_8, dtype=np.float64
            )

    def test_serialize_roundtrip_keeps_float_values(self):
        import tempfile
        from pathlib import Path

        from repro.sparsity.serialize import load_nm_weights, save_nm_weights

        rng = np.random.default_rng(2)
        dense = nm_prune(rng.normal(size=(4, 32)).astype(np.float32), FORMAT_1_4)
        mat = NMSparseMatrix.from_dense(dense, FORMAT_1_4, dtype=np.float32)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "w.npz"
            save_nm_weights(path, {"fc": mat})
            loaded = load_nm_weights(path)["fc"]
        assert loaded.values.dtype == np.float32
        assert np.array_equal(loaded.to_dense(), dense)


class TestPackedBytes:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    @pytest.mark.parametrize("duplicate", [False, True])
    def test_matches_materialised_packing(self, fmt, duplicate):
        rng = np.random.default_rng(3)
        dense = _random_nm_dense(rng, 5, fmt.m * 7, fmt)
        mat = NMSparseMatrix.from_dense(dense, fmt)
        assert fmt.packed_bytes(
            5, dense.shape[1], duplicate_offsets=duplicate
        ) == mat.total_bytes(duplicate_offsets=duplicate)

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ValueError, match="multiple"):
            FORMAT_1_8.packed_bytes(2, 12)


@settings(max_examples=40)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    rows=st.integers(1, 12),
    blocks=st.integers(1, 12),
    seed=st.integers(0, 2**31),
)
def test_roundtrip_property(fmt, rows, blocks, seed):
    """from_dense(to_dense(x)) == x for any N:M-compliant matrix."""
    rng = np.random.default_rng(seed)
    dense = _random_nm_dense(rng, rows, blocks * fmt.m, fmt)
    mat = NMSparseMatrix.from_dense(dense, fmt)
    assert (mat.to_dense() == dense).all()


@settings(max_examples=60, deadline=None)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    rows=st.integers(1, 12),
    blocks=st.integers(1, 10),
    drop=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)
def test_float_roundtrip_property(fmt, rows, blocks, drop, seed):
    """Property: the float pack/unpack round trip is bit-exact for any
    N:M-compliant float32 matrix, including underfull blocks, all-zero
    rows, negative values, and subnormals — and the byte accounting
    matches the analytic ``packed_bytes``."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, blocks * fmt.m)).astype(np.float32)
    dense[0] *= np.float32(1e-40)  # subnormal magnitudes survive packing
    dense = nm_prune(dense, fmt).astype(np.float32)
    dense = np.where(rng.random(dense.shape) < drop, 0, dense).astype(np.float32)
    mat = NMSparseMatrix.from_dense(dense, fmt, dtype=np.float32)
    assert mat.values.dtype == np.float32
    assert np.array_equal(mat.to_dense(), dense)
    assert mat.total_bytes() == fmt.packed_bytes(
        rows, dense.shape[1], value_bytes=4
    )
    again = NMSparseMatrix.from_dense(dense, fmt, dtype=np.float32)
    assert np.array_equal(again.values, mat.values)
    assert np.array_equal(again.offsets, mat.offsets)


@settings(max_examples=60, deadline=None)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    rows=st.integers(1, 10),
    blocks=st.integers(1, 8),
    drop=st.floats(0.0, 1.0),
    zero_first_row=st.booleans(),
    seed=st.integers(0, 2**31),
)
def test_roundtrip_underfull_blocks_property(
    fmt, rows, blocks, drop, zero_first_row, seed
):
    """Round trip with underfull blocks (fewer than N non-zeros) and
    all-zero rows — the shapes a pruned-then-quantised network emits.

    Also a regression for the ``from_dense`` aliasing hazard: the kept
    positions were a *view* into the argsort result and sorting them in
    place mutated it; the encode must be deterministic, side-effect
    free, and keep offsets sorted within every block.
    """
    rng = np.random.default_rng(seed)
    dense = _random_nm_dense(rng, rows, blocks * fmt.m, fmt)
    # Randomly drop non-zeros so some blocks go underfull / empty.
    dense = np.where(rng.random(dense.shape) < drop, 0, dense).astype(np.int8)
    if zero_first_row:
        dense[0] = 0
    snapshot = dense.copy()
    mat = NMSparseMatrix.from_dense(dense, fmt)
    assert (dense == snapshot).all(), "from_dense mutated its input"
    assert (mat.to_dense() == dense).all()
    # Offsets stay strictly increasing inside each block (the layout
    # the decimation kernels assume), for N=1 trivially true per block.
    offs = mat.offsets.reshape(rows, -1, fmt.n)
    assert (np.diff(offs, axis=2) > 0).all() if fmt.n > 1 else True
    assert (mat.offsets < fmt.m).all()
    # Determinism: encoding the same matrix twice is bit-identical.
    again = NMSparseMatrix.from_dense(dense, fmt)
    assert (again.values == mat.values).all()
    assert (again.offsets == mat.offsets).all()

