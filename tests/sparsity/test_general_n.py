"""General-N support (e.g. NVIDIA-style 2:4) in the format layer.

The paper's kernels commit to N=1; the data structures, pruning and
functional sparse matmul support arbitrary N — tested here so the
format layer stands on its own (a downstream user can encode 2:4 even
though the MCU kernels don't consume it)."""

import numpy as np
import pytest

from repro.kernels.conv_sparse import sparse_matmul_acc
from repro.sparsity.nm import NMFormat, NMSparseMatrix
from repro.sparsity.pruning import nm_prune
from repro.sparsity.stats import is_nm_sparse

FORMAT_2_4 = NMFormat(2, 4)
FORMAT_2_8 = NMFormat(2, 8)


class TestFormat:
    def test_2_4_properties(self):
        assert FORMAT_2_4.name == "2:4"
        assert FORMAT_2_4.sparsity == 0.5
        assert FORMAT_2_4.offset_bits == 2

    def test_2_4_memory_reduction(self):
        # 2 x (8+2) bits per 4 positions = 5 bits/weight.
        assert FORMAT_2_4.bits_per_dense_weight() == pytest.approx(5.0)
        assert FORMAT_2_4.weight_memory_reduction() == pytest.approx(0.375)


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", [FORMAT_2_4, FORMAT_2_8])
    def test_roundtrip(self, fmt):
        rng = np.random.default_rng(0)
        w = nm_prune(rng.integers(-128, 128, (6, 8 * fmt.m)).astype(np.int8), fmt)
        mat = NMSparseMatrix.from_dense(w, fmt)
        assert (mat.to_dense() == w).all()

    def test_pruning_keeps_two_per_block(self):
        rng = np.random.default_rng(1)
        w = nm_prune(rng.normal(size=(4, 32)), FORMAT_2_4)
        assert is_nm_sparse(w, FORMAT_2_4)
        blocks = (w.reshape(4, 8, 4) != 0).sum(axis=2)
        assert (blocks == 2).all()

    def test_three_per_block_rejected(self):
        dense = np.zeros((1, 4), dtype=np.int8)
        dense[0, :3] = 1
        with pytest.raises(ValueError, match="violate"):
            NMSparseMatrix.from_dense(dense, FORMAT_2_4)


class TestFunctionalMatmul:
    @pytest.mark.parametrize("fmt", [FORMAT_2_4, FORMAT_2_8])
    def test_gather_matches_dense(self, fmt):
        rng = np.random.default_rng(2)
        w = nm_prune(rng.integers(-128, 128, (6, 4 * fmt.m)).astype(np.int8), fmt)
        mat = NMSparseMatrix.from_dense(w, fmt)
        x = rng.integers(-128, 128, (3, 4 * fmt.m)).astype(np.int8)
        got = sparse_matmul_acc(x, mat, method="gather")
        ref = x.astype(np.int32) @ w.astype(np.int32).T
        assert (got == ref).all()

    def test_kernel_cost_model_rejects_general_n(self):
        """The MCU kernels only support N=1 (paper scope) — the cost
        model must refuse rather than silently misprice."""
        from repro.kernels.cost_model import conv_layer_cycles
        from repro.kernels.shapes import ConvShape

        with pytest.raises((ValueError, KeyError)):
            conv_layer_cycles(
                ConvShape(iy=4, ix=4, c=8, k=8), "sparse-sw", FORMAT_2_4
            )
