"""Tests for the COO/CSR comparison formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.coo import COOMatrix
from repro.sparsity.csr import CSRMatrix


def _sparse_dense(rng, rows, cols, density):
    w = rng.integers(-128, 128, size=(rows, cols)).astype(np.int8)
    mask = rng.random((rows, cols)) < density
    return np.where(mask, w, 0).astype(np.int8)


class TestCOO:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = _sparse_dense(rng, 10, 20, 0.2)
        assert (COOMatrix.from_dense(dense).to_dense() == dense).all()

    def test_nnz(self):
        dense = np.zeros((4, 4), dtype=np.int8)
        dense[1, 2] = 3
        dense[3, 0] = -1
        assert COOMatrix.from_dense(dense).nnz == 2

    def test_total_bits(self):
        dense = np.zeros((4, 4), dtype=np.int8)
        dense[0, 0] = 1
        coo = COOMatrix.from_dense(dense, row_bits=16, col_bits=16)
        assert coo.total_bits() == 8 + 32

    def test_break_even_paper_value(self):
        """Sec. 2.1: with 24 index bits per NZ the break-even is 75%."""
        assert COOMatrix.break_even_sparsity(16, 8) == pytest.approx(0.75)

    def test_break_even_two_16bit_coords(self):
        assert COOMatrix.break_even_sparsity(16, 16) == pytest.approx(0.8)

    def test_storage_beats_dense_only_past_break_even(self):
        rng = np.random.default_rng(1)
        be = COOMatrix.break_even_sparsity(16, 16)
        dense_sparse = _sparse_dense(rng, 64, 64, 1 - be - 0.1)
        dense_dense = _sparse_dense(rng, 64, 64, 1 - be + 0.1)
        assert COOMatrix.from_dense(dense_sparse).total_bytes() < 64 * 64
        assert COOMatrix.from_dense(dense_dense).total_bytes() > 64 * 64

    def test_rejects_too_narrow_indices(self):
        dense = np.zeros((300, 4), dtype=np.int8)
        dense[299, 0] = 1
        with pytest.raises(ValueError):
            COOMatrix.from_dense(dense, row_bits=8)


class TestCSR:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        dense = _sparse_dense(rng, 12, 40, 0.3)
        assert (CSRMatrix.from_dense(dense).to_dense() == dense).all()

    def test_row_access(self):
        dense = np.zeros((3, 8), dtype=np.int8)
        dense[1, [2, 5]] = [7, -3]
        csr = CSRMatrix.from_dense(dense)
        vals, cols = csr.row(1)
        assert vals.tolist() == [7, -3]
        assert cols.tolist() == [2, 5]
        assert csr.row(0)[0].size == 0

    def test_row_ptr_monotone(self):
        rng = np.random.default_rng(3)
        dense = _sparse_dense(rng, 20, 16, 0.25)
        csr = CSRMatrix.from_dense(dense)
        assert (np.diff(csr.row_ptr) >= 0).all()
        assert csr.row_ptr[-1] == csr.nnz

    def test_break_even_values(self):
        """50% with 8-bit relative indices, 66.7% with 16-bit (Sec. 2.1)."""
        assert CSRMatrix.break_even_sparsity(8) == pytest.approx(0.5)
        assert CSRMatrix.break_even_sparsity(16) == pytest.approx(2 / 3)

    def test_csr_smaller_than_coo(self):
        """CSR compresses COO's row coordinates."""
        rng = np.random.default_rng(4)
        dense = _sparse_dense(rng, 32, 64, 0.2)
        csr = CSRMatrix.from_dense(dense)
        coo = COOMatrix.from_dense(dense)
        assert csr.total_bits() < coo.total_bits()

    def test_paper_csr_vs_nm_claim(self):
        """Sec. 4: CSR at 75% sparsity compresses < 25% vs dense, far
        worse than the 1:4 N:M format's 68.75%."""
        rng = np.random.default_rng(5)
        from repro.sparsity.nm import FORMAT_1_4, NMSparseMatrix
        from repro.sparsity.pruning import nm_prune

        w = rng.integers(-128, 128, size=(64, 256)).astype(np.int8)
        pruned = nm_prune(w, FORMAT_1_4)
        csr = CSRMatrix.from_dense(pruned, col_bits=16)
        nm = NMSparseMatrix.from_dense(pruned, FORMAT_1_4)
        csr_reduction = 1 - csr.total_bytes() / csr.dense_bytes()
        assert csr_reduction < 0.25
        assert nm.memory_reduction() == pytest.approx(0.6875)


@settings(max_examples=25)
@given(
    rows=st.integers(1, 16),
    cols=st.integers(1, 32),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31),
)
def test_coo_csr_roundtrip_property(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    dense = _sparse_dense(rng, rows, cols, density)
    assert (COOMatrix.from_dense(dense).to_dense() == dense).all()
    assert (CSRMatrix.from_dense(dense).to_dense() == dense).all()
