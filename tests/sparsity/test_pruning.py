"""Tests for magnitude N:M pruning (repro.sparsity.pruning)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMFormat
from repro.sparsity.pruning import (
    nm_prune,
    nm_prune_mask,
    prune_conv_weights,
    prune_fc_weights,
)
from repro.sparsity.stats import is_nm_sparse, sparsity_ratio


class TestMask:
    def test_keeps_largest_magnitude(self):
        w = np.array([[1, -9, 3, 2, 0, 0, 5, -1]], dtype=np.float64)
        mask = nm_prune_mask(w, FORMAT_1_4)
        assert mask.tolist() == [[False, True, False, False, False, False, True, False]]

    def test_exactly_n_per_block(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(6, 64))
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            mask = nm_prune_mask(w, fmt)
            blocks = mask.reshape(6, -1, fmt.m)
            assert (blocks.sum(axis=2) == fmt.n).all()

    def test_tie_break_deterministic(self):
        w = np.ones((1, 8))
        mask = nm_prune_mask(w, FORMAT_1_8)
        assert mask[0, 0] and mask.sum() == 1  # lowest index wins

    def test_general_n(self):
        w = np.arange(16, dtype=float)[None, :]
        mask = nm_prune_mask(w, NMFormat(2, 8))
        blocks = mask.reshape(1, 2, 8)
        assert (blocks.sum(axis=2) == 2).all()
        assert mask[0, 6] and mask[0, 7]  # largest two of first block

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            nm_prune_mask(np.zeros((2, 10)), FORMAT_1_4)


class TestPrune:
    def test_result_is_nm_sparse(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(8, 128))
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            pruned = nm_prune(w, fmt)
            assert is_nm_sparse(pruned, fmt)
            assert sparsity_ratio(pruned) >= fmt.sparsity - 1e-9

    def test_kept_values_unchanged(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 32))
        pruned = nm_prune(w, FORMAT_1_8)
        kept = pruned != 0
        assert np.allclose(pruned[kept], w[kept])

    def test_conv_layout_blocks_along_fyfxc(self):
        """Blocks follow the (FY, FX, C) im2col flattening order."""
        rng = np.random.default_rng(3)
        w = rng.normal(size=(4, 3, 3, 16))
        pruned = prune_conv_weights(w, FORMAT_1_8)
        flat = pruned.reshape(4, -1)
        assert is_nm_sparse(flat, FORMAT_1_8)

    def test_conv_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            prune_conv_weights(np.zeros((4, 9)), FORMAT_1_4)

    def test_fc_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            prune_fc_weights(np.zeros((4, 3, 3, 8)), FORMAT_1_4)

    def test_idempotent(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(4, 64))
        once = nm_prune(w, FORMAT_1_16)
        twice = nm_prune(once, FORMAT_1_16)
        assert np.array_equal(once, twice)


@settings(max_examples=40)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    rows=st.integers(1, 8),
    blocks=st.integers(1, 8),
    seed=st.integers(0, 2**31),
)
def test_pruning_error_is_minimal_per_block(fmt, rows, blocks, seed):
    """Magnitude pruning keeps the max-|w| element of each block, so the
    L2 error per block equals the sum of squares of all but the largest."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, blocks * fmt.m))
    pruned = nm_prune(w, fmt)
    wb = w.reshape(rows, blocks, fmt.m)
    kept = np.abs(pruned.reshape(rows, blocks, fmt.m)).max(axis=2)
    assert np.allclose(kept, np.abs(wb).max(axis=2))
