"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCli:
    def test_peaks(self, capsys):
        assert main(["peaks"]) == 0
        out = capsys.readouterr().out
        assert "dense-4x2" in out and "2.29" in out

    def test_memory(self, capsys):
        assert main(["memory"]) == 0
        out = capsys.readouterr().out
        assert "N:M (SW)" in out and "Break-even" in out

    def test_fig8_conv(self, capsys):
        assert main(["fig8", "conv"]) == 0
        assert "speedup vs 1x2" in capsys.readouterr().out

    def test_fig8_fc(self, capsys):
        assert main(["fig8", "fc"]) == 0
        assert "speedup vs dense" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "ResNet18-ISA (ours)" in out

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "decimate im2col (paper)" in out

    def test_extensions(self, capsys):
        assert main(["extensions"]) == 0
        out = capsys.readouterr().out
        assert "pJ/MAC" in out and "CSR speedup" in out

    def test_engine(self, capsys):
        assert main(["engine", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "batched plan" in out and "speedup" in out

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_fig8_requires_kind(self):
        with pytest.raises(SystemExit):
            main(["fig8"])
