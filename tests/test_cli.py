"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCli:
    def test_peaks(self, capsys):
        assert main(["peaks"]) == 0
        out = capsys.readouterr().out
        assert "dense-4x2" in out and "2.29" in out

    def test_memory(self, capsys):
        assert main(["memory"]) == 0
        out = capsys.readouterr().out
        assert "N:M (SW)" in out and "Break-even" in out

    def test_fig8_conv(self, capsys):
        assert main(["fig8", "conv"]) == 0
        assert "speedup vs 1x2" in capsys.readouterr().out

    def test_fig8_fc(self, capsys):
        assert main(["fig8", "fc"]) == 0
        assert "speedup vs dense" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "ResNet18-ISA (ours)" in out

    def test_ablations(self, capsys):
        assert main(["ablations"]) == 0
        out = capsys.readouterr().out
        assert "decimate im2col (paper)" in out

    def test_extensions(self, capsys):
        assert main(["extensions"]) == 0
        out = capsys.readouterr().out
        assert "pJ/MAC" in out and "CSR speedup" in out

    def test_engine(self, capsys):
        assert main(["engine", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "batched plan" in out and "speedup" in out

    def test_engine_sparse_float(self, capsys):
        """Float sparse smoke: no dense fallback, within tolerance."""
        assert (
            main(["engine", "--sparse", "--mode", "float", "--fmt", "1:8",
                  "--batch", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "sparse float deviation" in out and "OK" in out
        assert "N:M layers" in out

    def test_engine_select_fmt(self, capsys):
        assert main(["engine", "--sparse", "--select-fmt", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "Format selection" in out
        assert "below fixed 1:4" in out
        assert "format selection gates: OK" in out

    def test_engine_select_fmt_requires_sparse(self, capsys):
        assert main(["engine", "--select-fmt", "--batch", "2"]) == 2
        assert "--sparse" in capsys.readouterr().err

    def test_engine_k_chunk_validated(self, capsys):
        from repro.kernels.conv_sparse import k_chunk

        assert main(["engine", "--sparse", "--k-chunk", "0", "--batch", "2"]) == 2
        assert "k_chunk" in capsys.readouterr().err
        assert (
            main(["engine", "--sparse", "--k-chunk", "16", "--batch", "2",
                  "--fmt", "1:4"])
            == 0
        )
        try:
            assert k_chunk() == 16  # the flag sets the process-wide knob
        finally:
            from repro.kernels.conv_sparse import set_k_chunk

            set_k_chunk(None)

    def test_loadgen_in_process(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--requests", "16",
                    "--qps", "2000",
                    "--model", "resnet-float",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Loadgen report" in out
        assert "succeeded" in out and "server mean batch" in out

    def test_loadgen_bad_connect_address(self, capsys):
        assert main(["loadgen", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-batch-size", "8"]
        )
        assert args.port == 0
        assert args.max_batch_size == 8
        assert args.func.__name__ == "_cmd_serve"

    def test_bad_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_fig8_requires_kind(self):
        with pytest.raises(SystemExit):
            main(["fig8"])
