"""Tests for the engine-backed functional check behind Table 2."""

import pytest

from repro.eval.table2 import functional_check


class TestFunctionalCheck:
    def test_vit_int8_tracks_float(self):
        """The quantised ViT deployment computes values close to the
        float reference (small max deviation relative to float peak)."""
        dev = functional_check(model="vit", batch=2, seed=0)
        assert 0.0 <= dev < 0.25

    def test_sparse_variant_accepted(self):
        dev = functional_check(model="vit", fmt_name="1:8", batch=1, seed=0)
        assert 0.0 <= dev < 0.25

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            functional_check(model="lstm")
