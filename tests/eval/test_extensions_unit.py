"""Unit tests for the extension experiments (repro.eval.extensions)."""

import pytest

from repro.eval.extensions import (
    MIXED_SCHEDULES,
    double_buffering_table,
    energy_table,
    mixed_sparsity_table,
    unstructured_comparison_table,
)


class TestEnergyTable:
    def test_rows_and_columns(self):
        table = energy_table()
        assert len(table.rows) == 8
        assert "pJ/MAC" in table.columns

    def test_components_sum_below_total_column(self):
        for r in energy_table().rows:
            parts = r["core uJ"] + r["L1 uJ"] + r["L2 uJ"]
            assert parts < r["total uJ"]  # background term remains

    def test_isa_beats_sw_at_every_format(self):
        rows = {(r["variant"], r["fmt"]): r["total uJ"] for r in energy_table().rows}
        for fmt in ("1:4", "1:8", "1:16"):
            assert rows[("sparse-isa", fmt)] < rows[("sparse-sw", fmt)]


class TestMixedSchedules:
    def test_schedule_registry(self):
        assert "uniform 1:8" in MIXED_SCHEDULES
        assert all(len(s) == 4 for s in MIXED_SCHEDULES.values())

    def test_table_has_dense_row(self):
        names = [r["schedule"] for r in mixed_sparsity_table().rows]
        assert "dense (PULP-NN)" in names
        assert len(names) == 1 + len(MIXED_SCHEDULES)


class TestUnstructured:
    def test_three_sparsity_points(self):
        assert len(unstructured_comparison_table().rows) == 3

    def test_csr_improves_with_sparsity(self):
        speedups = [r["CSR speedup"] for r in unstructured_comparison_table().rows]
        assert speedups == sorted(speedups)


class TestDoubleBuffering:
    def test_four_rows(self):
        assert len(double_buffering_table().rows) == 4

    def test_conv_compute_bound_fc_memory_bound(self):
        rows = {
            (r["layer"], r["policy"]): r for r in double_buffering_table().rows
        }
        conv = rows[("conv C=128 K=256", "double-buffered")]
        fc = rows[("fc C=2048 K=256", "double-buffered")]
        assert conv["transfer/compute"] < fc["transfer/compute"]
