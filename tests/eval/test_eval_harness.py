"""Tests for the experiment harness (repro.eval): structural checks on
each table builder plus the paper-value anchors that unit tests (rather
than benches) should pin down."""

import numpy as np
import pytest

from repro.eval.ablations import (
    im2col_strategy_table,
    layout_interleaving_table,
    offset_duplication_table,
    tiling_awareness_table,
    unrolling_table,
)
from repro.eval.fig8 import average_speedup, fig8_conv, fig8_fc
from repro.eval.formats import break_even_table, fig1_demo, format_memory_table
from repro.eval.peaks import peak_macs_per_instruction, peaks_table
from repro.eval.table3 import table3_sota


class TestFig8:
    def test_conv_rows_complete(self):
        table = fig8_conv()
        assert len(table.rows) == 32
        assert all(r["MAC/cyc"] > 0 for r in table.rows)

    def test_fc_rows_complete(self):
        assert len(fig8_fc().rows) == 28

    def test_dense_baseline_speedup_is_one(self):
        table = fig8_conv()
        for r in table.rows:
            if r["variant"] == "dense-1x2":
                assert r["speedup vs 1x2"] == pytest.approx(1.0)

    def test_average_speedup_monotone_in_sparsity_isa(self):
        sp = [
            average_speedup("conv", "sparse-isa", f)
            for f in ("1:4", "1:8", "1:16")
        ]
        assert sp == sorted(sp)

    def test_unknown_variant_raises(self):
        with pytest.raises((KeyError, ValueError)):
            average_speedup("conv", "sparse-sw", "2:4")


class TestPeaks:
    def test_table_has_all_families(self):
        kinds = {(r["kind"], r["variant"]) for r in peaks_table().rows}
        assert ("conv", "dense-4x2") in kinds
        assert ("fc", "sparse-isa") in kinds

    def test_dense_equivalent_scaling(self):
        """Dense-equivalent peak = effective peak x M."""
        for m in (8, 16):
            eff = peak_macs_per_instruction("conv", "sparse-sw", m)
            row = next(
                r
                for r in peaks_table().rows
                if r["variant"] == "sparse-sw" and r["M"] == m and r["kind"] == "conv"
            )
            assert row["dense-equivalent"] == pytest.approx(eff * m)


class TestFormats:
    def test_memory_table_orderings(self):
        for r in format_memory_table().rows:
            assert r["N:M (SW)"] < r["CSR"] < r["COO"]

    def test_break_even_has_nm_rows(self):
        fmts = [r["format"] for r in break_even_table().rows]
        assert "N:M 1:16" in fmts

    def test_fig1_all_same_support_size(self):
        demo = fig1_demo()
        for name in ("unstructured", "1:4", "block"):
            assert (demo[name] != 0).sum() == 16  # 25% of 64


class TestTable3:
    def test_has_ours_rows(self):
        names = [r["benchmark"] for r in table3_sota().rows]
        assert "ResNet18-SW (ours)" in names
        assert "ResNet18-ISA (ours)" in names

    def test_area_column_only_for_hw_rows(self):
        rows = {r["benchmark"]: r.get("area %") for r in table3_sota().rows}
        assert rows["spMV (SSSR)"] == 44.0
        assert rows["LeNet (Scalpel)"] is None


class TestAblations:
    def test_im2col_strategies_ranked(self):
        ratios = [r["vs chosen"] for r in im2col_strategy_table().rows]
        assert min(ratios) == 1.0

    def test_duplication_table_rows(self):
        assert len(offset_duplication_table().rows) == 3

    def test_tiling_table_rows(self):
        assert len(tiling_awareness_table().rows) == 4

    def test_layout_table_savings_positive(self):
        assert all(
            r["DMA cycles saved"] > 0 for r in layout_interleaving_table().rows
        )

    def test_unrolling_instructions_decrease_per_mac(self):
        per_mac = [r["instr per MAC"] for r in unrolling_table().rows]
        assert per_mac == sorted(per_mac, reverse=True)
