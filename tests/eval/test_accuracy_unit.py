"""Unit tests for the accuracy-trend harness (repro.eval.accuracy)."""

import numpy as np

from repro.eval.accuracy import accuracy_trend, build_small_cnn
from repro.sparsity.nm import FORMAT_1_8
from repro.train.autograd import Tensor
from repro.train.srste import SparseConv2d, SparseLinear


class TestBuildSmallCnn:
    def test_dense_has_no_sparse_layers(self):
        model = build_small_cnn(8, None)
        assert not any(
            isinstance(l, (SparseConv2d, SparseLinear)) for l in model.layers
        )

    def test_sparse_has_two_sparse_layers(self):
        model = build_small_cnn(8, FORMAT_1_8)
        sparse = [
            l for l in model.layers if isinstance(l, (SparseConv2d, SparseLinear))
        ]
        assert len(sparse) == 2

    def test_forward_shape(self):
        model = build_small_cnn(8, FORMAT_1_8)
        out = model(Tensor(np.zeros((2, 16, 16, 3))))
        assert out.shape == (2, 8)

    def test_stem_stays_dense(self):
        """Mirrors the paper: the C=3 stem cannot satisfy any pattern."""
        model = build_small_cnn(8, FORMAT_1_8)
        assert not isinstance(model.layers[0], SparseConv2d)


class TestTrendHarness:
    def test_quick_run_structure(self):
        table, points = accuracy_trend(
            epochs=1, n_train=64, n_classes=4, seed=0
        )
        assert [p.label for p in points] == ["dense", "1:4", "1:8", "1:16"]
        assert len(table.rows) == 4
        for p in points:
            assert 0.0 <= p.accuracy <= 1.0
        assert all(p.weights_are_nm for p in points)
