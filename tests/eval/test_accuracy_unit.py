"""Unit tests for the accuracy-trend harness (repro.eval.accuracy)."""

import numpy as np
import pytest

from repro.engine import InferenceEngine
from repro.eval.accuracy import (
    accuracy_trend,
    build_small_cnn,
    deployed_int8_accuracy,
    sequential_to_graph,
)
from repro.sparsity.nm import FORMAT_1_8
from repro.train.autograd import Tensor
from repro.train.data import make_synthetic_dataset
from repro.train.nn import Sequential
from repro.train.srste import SparseConv2d, SparseLinear


class TestBuildSmallCnn:
    def test_dense_has_no_sparse_layers(self):
        model = build_small_cnn(8, None)
        assert not any(
            isinstance(l, (SparseConv2d, SparseLinear)) for l in model.layers
        )

    def test_sparse_has_two_sparse_layers(self):
        model = build_small_cnn(8, FORMAT_1_8)
        sparse = [
            l for l in model.layers if isinstance(l, (SparseConv2d, SparseLinear))
        ]
        assert len(sparse) == 2

    def test_forward_shape(self):
        model = build_small_cnn(8, FORMAT_1_8)
        out = model(Tensor(np.zeros((2, 16, 16, 3))))
        assert out.shape == (2, 8)

    def test_stem_stays_dense(self):
        """Mirrors the paper: the C=3 stem cannot satisfy any pattern."""
        model = build_small_cnn(8, FORMAT_1_8)
        assert not isinstance(model.layers[0], SparseConv2d)


class TestExportToGraph:
    def test_export_matches_training_forward(self):
        """The deployed graph computes the same function as the model."""
        model = build_small_cnn(4, None, seed=0)
        g = sequential_to_graph(model, (16, 16, 3), name="export")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 16, 16, 3))
        want = model(Tensor(x)).data
        got = InferenceEngine().run_batch(g, x)
        assert np.allclose(got, want, rtol=1e-3, atol=1e-4)

    def test_sparse_layers_export_masked_weights(self):
        model = build_small_cnn(4, FORMAT_1_8, seed=0)
        g = sequential_to_graph(model, (16, 16, 3), name="export-sparse")
        conv2 = g.node("conv3")  # layer index 3 is the sparse conv
        w = conv2.attrs["weights"].reshape(conv2.attrs["weights"].shape[0], -1)
        from repro.sparsity.stats import is_nm_sparse

        assert is_nm_sparse(w, FORMAT_1_8)

    def test_unsupported_layer_rejected(self):
        class Mystery:
            pass

        model = Sequential(Mystery())
        with pytest.raises(ValueError, match="cannot export"):
            sequential_to_graph(model, (16, 16, 3))

    def test_deployed_int8_accuracy_in_range(self):
        data = make_synthetic_dataset(
            n_classes=4, n_train=32, n_test=32, hw=16, noise=1.1, seed=0
        )
        model = build_small_cnn(4, None, seed=0)
        acc = deployed_int8_accuracy(model, data)
        assert 0.0 <= acc <= 1.0


class TestTrendHarness:
    def test_quick_run_structure(self):
        table, points = accuracy_trend(
            epochs=1, n_train=64, n_classes=4, seed=0
        )
        assert [p.label for p in points] == ["dense", "1:4", "1:8", "1:16"]
        assert len(table.rows) == 4
        for p in points:
            assert 0.0 <= p.accuracy <= 1.0
            assert 0.0 <= p.int8_accuracy <= 1.0
        assert all(p.weights_are_nm for p in points)
