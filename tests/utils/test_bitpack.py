"""Tests for sub-byte packing (repro.utils.bitpack)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitpack import (
    pack_bits,
    pack_crumbs,
    pack_nibbles,
    unpack_bits,
    unpack_crumbs,
    unpack_nibbles,
)


class TestPackBits:
    def test_nibbles_known_value(self):
        packed = pack_nibbles(np.array([0x1, 0x2, 0x3, 0x4]))
        assert packed.tolist() == [0x21, 0x43]

    def test_crumbs_known_value(self):
        packed = pack_crumbs(np.array([0, 1, 2, 3]))
        # 0b11100100 = 0xE4, little-endian fields within the byte
        assert packed.tolist() == [0xE4]

    def test_full_byte_width(self):
        values = np.array([7, 200, 0])
        assert pack_bits(values, 8).tolist() == [7, 200, 0]

    def test_padding_to_byte(self):
        packed = pack_nibbles(np.array([0xF]))
        assert packed.tolist() == [0x0F]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="divide 8"):
            pack_bits(np.array([1]), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            pack_bits(np.array([4]), 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            pack_bits(np.zeros((2, 2), dtype=np.uint8), 4)

    def test_empty(self):
        assert pack_nibbles(np.array([], dtype=np.uint8)).size == 0


class TestUnpackBits:
    def test_unpack_known(self):
        assert unpack_nibbles(np.array([0x21, 0x43], dtype=np.uint8), 4).tolist() == [
            1,
            2,
            3,
            4,
        ]

    def test_unpack_discards_padding(self):
        packed = pack_crumbs(np.array([3, 2, 1]))
        assert unpack_crumbs(packed, 3).tolist() == [3, 2, 1]

    def test_unpack_too_many_raises(self):
        with pytest.raises(ValueError, match="only"):
            unpack_bits(np.array([0xFF], dtype=np.uint8), 4, 3)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="divide 8"):
            unpack_bits(np.array([0], dtype=np.uint8), 5, 1)


@given(
    st.lists(st.integers(0, 15), max_size=64),
)
def test_nibble_roundtrip(values):
    arr = np.array(values, dtype=np.uint8)
    assert unpack_nibbles(pack_nibbles(arr), len(values)).tolist() == values


@given(st.lists(st.integers(0, 3), max_size=64))
def test_crumb_roundtrip(values):
    arr = np.array(values, dtype=np.uint8)
    assert unpack_crumbs(pack_crumbs(arr), len(values)).tolist() == values


@given(
    st.sampled_from([1, 2, 4, 8]),
    st.data(),
)
def test_any_width_roundtrip(width, data):
    values = data.draw(
        st.lists(st.integers(0, (1 << width) - 1), max_size=40)
    )
    arr = np.array(values, dtype=np.uint8)
    assert unpack_bits(pack_bits(arr, width), width, len(values)).tolist() == values
