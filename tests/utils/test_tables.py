"""Tests for the table renderer (repro.utils.tables)."""

import pytest

from repro.utils.tables import Table, format_si, render_markdown


class TestFormatSi:
    def test_giga(self):
        assert format_si(4_530_000_000, "MAC") == "4.53 GMAC"

    def test_mega(self):
        assert format_si(975_230_000, "cyc") == "975.23 Mcyc"

    def test_kilo(self):
        assert format_si(1_500, "B") == "1.50 kB"

    def test_plain(self):
        assert format_si(12.0) == "12.00"


class TestTable:
    def make(self):
        t = Table("Demo", ["model", "speedup"])
        t.add_row(model="ResNet18", speedup=3.21)
        t.add_row(model="ViT", speedup=1.81)
        return t

    def test_add_row_unknown_column(self):
        t = self.make()
        with pytest.raises(KeyError):
            t.add_row(nope=1)

    def test_column_accessor(self):
        t = self.make()
        assert t.column("speedup") == [3.21, 1.81]
        with pytest.raises(KeyError):
            t.column("nope")

    def test_missing_cells_render_dash(self):
        t = Table("X", ["a", "b"])
        t.add_row(a=1)
        assert "-" in t.render()

    def test_render_contains_all_cells(self):
        text = self.make().render()
        for token in ("Demo", "ResNet18", "3.21", "ViT", "1.81"):
            assert token in text

    def test_render_alignment_uniform_width(self):
        lines = self.make().render().splitlines()
        body = [l for l in lines if "ResNet" in l or "ViT" in l]
        assert len({len(l.rstrip()) for l in body}) <= 2  # aligned columns

    def test_markdown(self):
        md = render_markdown(self.make())
        assert md.startswith("**Demo**")
        assert "| model | speedup |" in md
        assert "| ResNet18 | 3.21 |" in md

    def test_empty_table_renders(self):
        t = Table("Empty", ["a"])
        assert "Empty" in t.render()
