"""Tests for deterministic RNG construction (repro.utils.rng)."""

import numpy as np

from repro.utils.rng import make_rng


def test_same_seed_same_stream():
    a = make_rng(7).integers(0, 1000, 10)
    b = make_rng(7).integers(0, 1000, 10)
    assert (a == b).all()


def test_different_seeds_differ():
    a = make_rng(1).integers(0, 1 << 30, 8)
    b = make_rng(2).integers(0, 1 << 30, 8)
    assert (a != b).any()


def test_passthrough_generator():
    gen = np.random.default_rng(3)
    assert make_rng(gen) is gen
