"""Tests for fixed-point helpers (repro.utils.fixedpoint)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.fixedpoint import (
    clip_int8,
    clip_uint8,
    requantize_int32,
    saturating_round_shift,
    to_int8,
    to_uint8,
)


class TestClips:
    def test_clip_int8_saturates(self):
        out = clip_int8(np.array([-300, -128, 0, 127, 300]))
        assert out.tolist() == [-128, -128, 0, 127, 127]
        assert out.dtype == np.int8

    def test_clip_uint8_saturates(self):
        out = clip_uint8(np.array([-5, 0, 255, 999]))
        assert out.tolist() == [0, 0, 255, 255]
        assert out.dtype == np.uint8

    def test_to_int8_rounds(self):
        assert to_int8(np.array([1.4, 1.6, -1.5])).tolist() == [1, 2, -2]

    def test_to_uint8_rounds(self):
        assert to_uint8(np.array([254.6, -3.0])).tolist() == [255, 0]


class TestRoundShift:
    def test_identity_at_zero_shift(self):
        x = np.array([5, -7])
        assert saturating_round_shift(x, 0).tolist() == [5, -7]

    def test_rounds_half_up(self):
        # 3 >> 1 with rounding: (3 + 1) >> 1 = 2
        assert saturating_round_shift(np.array([3]), 1).tolist() == [2]
        assert saturating_round_shift(np.array([1]), 1).tolist() == [1]

    def test_negative_values(self):
        # (-3 + 1) >> 1 = -1 (arithmetic shift)
        assert saturating_round_shift(np.array([-3]), 1).tolist() == [-1]

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            saturating_round_shift(np.array([1]), -1)


class TestRequantize:
    def test_unit_passthrough(self):
        acc = np.array([-10, 0, 50])
        assert requantize_int32(acc, 1, 0).tolist() == [-10, 0, 50]

    def test_scale_and_shift(self):
        acc = np.array([100])
        # 100 * 3 = 300; (300 + 2) >> 2 = 75
        assert requantize_int32(acc, 3, 2).tolist() == [75]

    def test_zero_point(self):
        assert requantize_int32(np.array([0]), 1, 0, zero_point=10).tolist() == [10]

    def test_unsigned_output(self):
        out = requantize_int32(np.array([-5, 300]), 1, 0, signed=False)
        assert out.tolist() == [0, 255]
        assert out.dtype == np.uint8

    def test_rejects_nonpositive_multiplier(self):
        with pytest.raises(ValueError):
            requantize_int32(np.array([1]), 0, 0)


@given(
    st.integers(-(2**31), 2**31 - 1),
    st.integers(1, 2**15),
    st.integers(0, 24),
)
def test_requantize_matches_float_reference(acc, multiplier, shift):
    """Integer requantisation tracks the real-valued rescale within 1 LSB."""
    out = int(requantize_int32(np.array([acc]), multiplier, shift)[0])
    ideal = acc * multiplier / (1 << shift)
    clipped = min(127, max(-128, ideal))
    assert abs(out - clipped) <= 1
