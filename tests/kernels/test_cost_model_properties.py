"""Property-based tests on the latency model's invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.cost_model import (
    DEFAULT_PARAMS,
    conv_layer_cycles,
    fc_layer_cycles,
    iter_cycles,
    iter_equiv_macs,
)
from repro.kernels.microcode import INNER_BODY_LENGTH
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import SUPPORTED_FORMATS

FORMATS = list(SUPPORTED_FORMATS.values())

conv_shapes = st.builds(
    ConvShape,
    iy=st.sampled_from([4, 8, 16, 32]),
    ix=st.sampled_from([4, 8, 16, 32]),
    c=st.sampled_from([16, 32, 64, 128]),
    k=st.sampled_from([8, 16, 64, 256]),
)

fc_shapes = st.builds(
    FcShape,
    c=st.sampled_from([64, 256, 1024, 2048]),
    k=st.sampled_from([16, 64, 256]),
    tokens=st.integers(1, 4),
)


@settings(max_examples=30, deadline=None)
@given(shape=conv_shapes, fmt=st.sampled_from(FORMATS))
def test_conv_breakdown_nonnegative_and_consistent(shape, fmt):
    for variant, f in (
        ("dense-1x2", None),
        ("sparse-sw", fmt),
        ("sparse-isa", fmt),
    ):
        bd = conv_layer_cycles(shape, variant, f)
        assert bd.compute > 0
        assert bd.im2col >= 0 and bd.overhead > 0 and bd.dma >= 0
        assert bd.total == pytest.approx(
            bd.compute + bd.im2col + bd.overhead + bd.dma
        )
        assert bd.macs == shape.macs


@settings(max_examples=30, deadline=None)
@given(shape=conv_shapes, fmt=st.sampled_from(FORMATS))
def test_isa_never_slower_than_sw(shape, fmt):
    sw = conv_layer_cycles(shape, "sparse-sw", fmt).total
    isa = conv_layer_cycles(shape, "sparse-isa", fmt).total
    assert isa <= sw


@settings(max_examples=30, deadline=None)
@given(shape=conv_shapes)
def test_sparser_is_never_slower_for_isa(shape):
    totals = [
        conv_layer_cycles(shape, "sparse-isa", fmt).total for fmt in FORMATS
    ]
    assert totals == sorted(totals, reverse=True)


@settings(max_examples=30, deadline=None)
@given(shape=conv_shapes, fmt=st.sampled_from(FORMATS))
def test_speedup_bounded_by_inner_loop_ratio(shape, fmt):
    """Layer-level speedup over dense 1x2 can never exceed the pure
    inner-loop cycle ratio (overheads only dilute it)."""
    dense = conv_layer_cycles(shape, "dense-1x2")
    sparse = conv_layer_cycles(shape, "sparse-isa", fmt)
    per_mac_dense = iter_cycles("conv", "dense-1x2", None, DEFAULT_PARAMS) / 8
    per_mac_sparse = iter_cycles(
        "conv", "sparse-isa", fmt, DEFAULT_PARAMS
    ) / iter_equiv_macs("conv", "sparse-isa", fmt)
    bound = per_mac_dense / per_mac_sparse
    assert dense.total / sparse.total <= bound * 1.01


@settings(max_examples=30, deadline=None)
@given(
    shape=st.builds(
        ConvShape,
        iy=st.sampled_from([8, 16]),
        ix=st.sampled_from([8, 16]),
        c=st.sampled_from([32, 64]),
        k=st.sampled_from([64, 128]),
    )
)
def test_cycles_monotone_in_channels(shape):
    bigger = ConvShape(
        iy=shape.iy, ix=shape.ix, c=shape.c * 2, k=shape.k,
        fy=shape.fy, fx=shape.fx, s=shape.s, p=shape.p,
    )
    for variant, fmt in (("dense-1x2", None), ("sparse-sw", FORMATS[1])):
        assert (
            conv_layer_cycles(bigger, variant, fmt).total
            > conv_layer_cycles(shape, variant, fmt).total
        )


@settings(max_examples=30, deadline=None)
@given(shape=fc_shapes, fmt=st.sampled_from(FORMATS))
def test_fc_invariants(shape, fmt):
    dense = fc_layer_cycles(shape, "dense")
    sw = fc_layer_cycles(shape, "sparse-sw", fmt)
    isa = fc_layer_cycles(shape, "sparse-isa", fmt)
    assert isa.total <= sw.total  # the extension never hurts
    assert sw.dma < dense.dma  # sparse streams fewer weight bytes
    for bd in (dense, sw, isa):
        assert bd.total > 0 and bd.macs == shape.macs


def test_inner_body_lengths_are_authoritative():
    """Every cost-model kernel key has a microcode body length, and the
    modelled iteration cost is never below the instruction count."""
    from repro.kernels.cost_model import INNER_ITER_CYCLES

    for (kind, variant, m), cycles in INNER_ITER_CYCLES.items():
        key = (kind, variant) if m == 0 else (kind, variant, m)
        assert key in INNER_BODY_LENGTH
        assert cycles >= INNER_BODY_LENGTH[key] - 0.51  # amortised loads
