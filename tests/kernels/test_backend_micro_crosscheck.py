"""ISA emulation backend vs the microcoded kernels on the core model.

The acceptance bar for :class:`repro.kernels.backend.SparseIsaBackend`:
its vectorised batched emulation must reproduce, element by element,
the int32 accumulators the :mod:`repro.kernels.microcode` ISA programs
produce when executed instruction-by-instruction on the behavioural
core model (including the xDecimate XFU) — on every paper format,
for conv pairs and FC layers, including zero-padded NNZ tails.
"""

import numpy as np
import pytest

from repro.kernels.backend import get_backend
from repro.kernels.conv_sparse import conv2d_acc_sparse
from repro.kernels.fc_sparse import fc_acc_sparse
from repro.kernels.micro_runner import run_conv_pair, run_fc_micro
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune

FORMATS = [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]

ISA = get_backend("sparse-isa")


def sparse_mat(rng, k, r, fmt):
    w = nm_prune(rng.integers(-128, 128, (k, r)).astype(np.int8), fmt)
    return NMSparseMatrix.from_dense(w, fmt)


class TestConvEmulationVsMicrocode:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_conv_pair_accumulators_match(self, fmt):
        rng = np.random.default_rng(10)
        k, r = 5, 6 * fmt.m
        mat = sparse_mat(rng, k, r, fmt)
        buf1 = rng.integers(-128, 128, r).astype(np.int8)
        buf2 = rng.integers(-128, 128, r).astype(np.int8)
        micro = run_conv_pair("sparse-isa", mat, buf1, buf2)
        core = ISA.bind(ISA.pack(mat, None, "conv"), np.int32)
        emulated = core(np.stack([buf1, buf2])[None])[0]  # (2, K)
        assert np.array_equal(emulated[0], micro.acc[0])
        assert np.array_equal(emulated[1], micro.acc[1])

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_padded_nnz_tail(self, fmt):
        """NNZ not divisible by the pad unit: the microcode decimates
        zero-valued pad entries past the buffer, the emulation clamps
        their addresses — both must agree (and equal the exact ref)."""
        rng = np.random.default_rng(11)
        r = 2 * fmt.m  # nnz=2 per row -> padded to 4 (sw) / 8 (1:4 isa)
        mat = sparse_mat(rng, 4, r, fmt)
        buf1 = rng.integers(-128, 128, r).astype(np.int8)
        buf2 = rng.integers(-128, 128, r).astype(np.int8)
        micro = run_conv_pair("sparse-isa", mat, buf1, buf2)
        core = ISA.bind(ISA.pack(mat, None, "conv"), np.int32)
        emulated = core(np.stack([buf1, buf2])[None])[0]
        ref = np.stack([buf1, buf2]).astype(np.int32) @ mat.to_dense().astype(np.int32).T
        assert np.array_equal(emulated[0], micro.acc[0])
        assert np.array_equal(emulated[1], micro.acc[1])
        assert np.array_equal(emulated, ref)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_whole_conv_layer_via_functional_wrapper(self, fmt):
        """conv2d_acc_sparse(method='isa') == the gather reference on a
        strided, padded layer geometry."""
        rng = np.random.default_rng(12)
        shape = ConvShape(iy=6, ix=6, c=fmt.m, k=3, fy=2, fx=2, s=2, p=1)
        mat = sparse_mat(rng, shape.k, shape.reduce_dim, fmt)
        x = rng.integers(-128, 128, (6, 6, fmt.m)).astype(np.int8)
        isa_acc = conv2d_acc_sparse(x, mat, shape, method="isa")
        ref_acc = conv2d_acc_sparse(x, mat, shape, method="dense")
        assert np.array_equal(isa_acc, ref_acc)


class TestFcEmulationVsMicrocode:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_fc_accumulators_match(self, fmt):
        rng = np.random.default_rng(13)
        k, c = 6, 8 * fmt.m
        mat = sparse_mat(rng, k, c, fmt)
        x = rng.integers(-128, 128, c).astype(np.int8)
        micro = run_fc_micro("sparse-isa", mat, x)
        core = ISA.bind(ISA.pack(mat, None, "fc"), np.int32)
        emulated = core(x[None, None, :])[0, 0]
        assert np.array_equal(emulated, micro.acc)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_fc_functional_wrapper(self, fmt):
        rng = np.random.default_rng(14)
        k, c = 4, 3 * fmt.m
        mat = sparse_mat(rng, k, c, fmt)
        shape = FcShape(c=c, k=k, tokens=2)
        x = rng.integers(-128, 128, (2, c)).astype(np.int8)
        assert np.array_equal(
            fc_acc_sparse(x, mat, shape, method="isa"),
            fc_acc_sparse(x, mat, shape, method="dense"),
        )

    def test_fc_isa_odd_k_rejected(self):
        rng = np.random.default_rng(15)
        mat = sparse_mat(rng, 3, 32, FORMAT_1_8)
        with pytest.raises(ValueError, match="even"):
            ISA.pack(mat, None, "fc")


class TestEmulationConsumesTheStream:
    def test_conv_layout_bytes_match_micro_runner_image(self):
        """The backend packs with the same layout builders the
        micro-runner places in memory — the streams are byte-equal."""
        from repro.kernels import microcode as mc

        rng = np.random.default_rng(16)
        mat = sparse_mat(rng, 4, 4 * 8, FORMAT_1_8)
        vals, offs, nnz_pad = mc.pack_sparse_rows_isa_conv(mat)
        layout = ISA.pack(mat, None, "conv")
        assert np.array_equal(layout.packed_offsets, offs)
        assert np.array_equal(layout.values.reshape(-1), vals)
        assert layout.nnz_pad == nnz_pad

    def test_conv_weight_bytes_pay_for_duplication(self):
        rng = np.random.default_rng(17)
        mat = sparse_mat(rng, 4, 4 * 8, FORMAT_1_8)
        conv_layout = ISA.pack(mat, None, "conv")
        fc_layout = ISA.pack(mat, None, "fc")
        assert conv_layout.weight_bytes == mat.total_bytes(
            duplicate_offsets=True
        )
        assert fc_layout.weight_bytes == mat.total_bytes()
        assert conv_layout.weight_bytes > fc_layout.weight_bytes
