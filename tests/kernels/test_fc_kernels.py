"""Functional tests for dense and sparse FC kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.fc_dense import fc_acc_dense, fc_dense
from repro.kernels.fc_sparse import fc_acc_sparse, fc_sparse
from repro.kernels.requant import QuantParams
from repro.kernels.shapes import FcShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_fc_weights


def random_fc(rng, shape):
    x = rng.integers(-128, 128, (shape.tokens, shape.c)).astype(np.int8)
    w = rng.integers(-128, 128, (shape.k, shape.c)).astype(np.int8)
    return x, w


class TestDenseFc:
    def test_matches_matmul(self):
        shape = FcShape(c=64, k=10)
        rng = np.random.default_rng(0)
        x, w = random_fc(rng, shape)
        ref = x.astype(np.int64) @ w.astype(np.int64).T
        assert (fc_acc_dense(x, w, shape) == ref).all()

    def test_accepts_1d_input(self):
        shape = FcShape(c=32, k=4)
        rng = np.random.default_rng(1)
        x, w = random_fc(rng, shape)
        assert (fc_acc_dense(x[0], w, shape) == fc_acc_dense(x, w, shape)).all()

    def test_token_batch(self):
        shape = FcShape(c=16, k=6, tokens=5)
        rng = np.random.default_rng(2)
        x, w = random_fc(rng, shape)
        acc = fc_acc_dense(x, w, shape)
        assert acc.shape == (5, 6)
        for t in range(5):
            assert (
                acc[t] == fc_acc_dense(x[t], w, FcShape(c=16, k=6))[0]
            ).all()

    def test_requantised_output(self):
        shape = FcShape(c=64, k=8)
        rng = np.random.default_rng(3)
        x, w = random_fc(rng, shape)
        out = fc_dense(x, w, shape, QuantParams(3, 10))
        assert out.dtype == np.int8 and out.shape == (1, 8)

    def test_rejects_bad_shapes(self):
        shape = FcShape(c=16, k=4)
        with pytest.raises(ValueError):
            fc_acc_dense(np.zeros(15, dtype=np.int8), np.zeros((4, 16), np.int8), shape)
        with pytest.raises(ValueError):
            fc_acc_dense(np.zeros(16, dtype=np.int8), np.zeros((4, 15), np.int8), shape)


class TestSparseFc:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_matches_dense_on_pruned(self, fmt):
        shape = FcShape(c=4 * fmt.m, k=6)
        rng = np.random.default_rng(4)
        x, w = random_fc(rng, shape)
        wp = prune_fc_weights(w, fmt)
        mat = NMSparseMatrix.from_dense(wp, fmt)
        assert (
            fc_acc_sparse(x, mat, shape) == fc_acc_dense(x, wp, shape)
        ).all()

    def test_token_batch_sparse(self):
        shape = FcShape(c=32, k=8, tokens=7)
        rng = np.random.default_rng(5)
        x, w = random_fc(rng, shape)
        wp = prune_fc_weights(w, FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(wp, FORMAT_1_8)
        assert (
            fc_acc_sparse(x, mat, shape) == fc_acc_dense(x, wp, shape)
        ).all()

    def test_requant_parity_with_dense_kernel(self):
        shape = FcShape(c=64, k=4)
        rng = np.random.default_rng(6)
        x, w = random_fc(rng, shape)
        wp = prune_fc_weights(w, FORMAT_1_16)
        mat = NMSparseMatrix.from_dense(wp, FORMAT_1_16)
        q = QuantParams(7, 13)
        assert (fc_sparse(x, mat, shape, q) == fc_dense(x, wp, shape, q)).all()

    def test_rejects_mismatch(self):
        mat = NMSparseMatrix.from_dense(np.zeros((4, 32), np.int8), FORMAT_1_8)
        with pytest.raises(ValueError):
            fc_acc_sparse(np.zeros(64, np.int8), mat, FcShape(c=64, k=4))


@settings(max_examples=20, deadline=None)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    blocks=st.integers(1, 6),
    k=st.integers(1, 8),
    tokens=st.integers(1, 3),
    seed=st.integers(0, 2**31),
)
def test_sparse_fc_property(fmt, blocks, k, tokens, seed):
    shape = FcShape(c=blocks * fmt.m, k=k, tokens=tokens)
    rng = np.random.default_rng(seed)
    x, w = random_fc(rng, shape)
    wp = prune_fc_weights(w, fmt)
    mat = NMSparseMatrix.from_dense(wp, fmt)
    assert (fc_acc_sparse(x, mat, shape) == fc_acc_dense(x, wp, shape)).all()
