"""Full-layer instruction-level execution: whole conv layers and the
requantisation stage running on the core model."""

import numpy as np
import pytest

from repro.kernels.conv_dense import conv2d_acc_dense
from repro.kernels.conv_sparse import conv2d_acc_sparse
from repro.kernels.micro_runner import run_conv_layer_micro, run_requant_micro
from repro.kernels.requant import QuantParams, requantize
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_conv_weights


def layer_case(fmt=None, shape=None, seed=0):
    shape = shape or ConvShape(iy=5, ix=4, c=16, k=4, fy=3, fx=3, s=1, p=1)
    rng = np.random.default_rng(seed)
    x = rng.integers(-128, 128, (shape.iy, shape.ix, shape.c)).astype(np.int8)
    w = rng.integers(-128, 128, (shape.k, 3, 3, shape.c)).astype(np.int8)
    if fmt is None:
        return shape, x, w.reshape(shape.k, -1), w
    wp = prune_conv_weights(w, fmt)
    return shape, x, NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), fmt), wp


class TestFullConvLayer:
    def test_dense_layer_matches_numpy(self):
        shape, x, wmat, w4d = layer_case()
        res = run_conv_layer_micro("dense-1x2", wmat, x, shape)
        assert (res.acc == conv2d_acc_dense(x, w4d, shape)).all()

    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    @pytest.mark.parametrize("variant", ["sparse-sw", "sparse-isa"])
    def test_sparse_layer_matches_numpy(self, fmt, variant):
        shape = ConvShape(iy=4, ix=4, c=2 * fmt.m, k=4, fy=3, fx=3, s=1, p=1)
        shape, x, mat, wp = layer_case(fmt, shape, seed=1)
        res = run_conv_layer_micro(variant, mat, x, shape)
        assert (res.acc == conv2d_acc_sparse(x, mat, shape)).all()

    def test_odd_output_count_tail(self):
        """OY*OX odd: the last pair recomputes one patch and discards
        the duplicate result."""
        shape = ConvShape(iy=3, ix=3, c=8, k=2, fy=3, fx=3, s=1, p=1)
        shape, x, wmat, w4d = layer_case(shape=shape, seed=2)
        res = run_conv_layer_micro("dense-1x2", wmat, x, shape)
        assert res.acc.shape == (3, 3, 2)
        assert (res.acc == conv2d_acc_dense(x, w4d, shape)).all()

    def test_layer_level_isa_speedup(self):
        """Whole-layer cycle counts show the ISA win, not just loops."""
        fmt = FORMAT_1_8
        shape = ConvShape(iy=4, ix=4, c=4 * fmt.m, k=8, fy=3, fx=3, s=1, p=1)
        shape, x, mat, _ = layer_case(fmt, shape, seed=3)
        sw = run_conv_layer_micro("sparse-sw", mat, x, shape)
        isa = run_conv_layer_micro("sparse-isa", mat, x, shape)
        assert (sw.acc == isa.acc).all()
        assert 1.5 < sw.stats.cycles / isa.stats.cycles < 2.0


class TestRequantMicro:
    def test_matches_numpy_requantize(self):
        rng = np.random.default_rng(4)
        acc = rng.integers(-(1 << 20), 1 << 20, 64).astype(np.int32)
        q = QuantParams(multiplier=5, shift=14)
        res = run_requant_micro(acc, q.multiplier, q.shift)
        assert (res.acc == requantize(acc, q)).all()

    def test_clipping_both_rails(self):
        acc = np.array([1 << 30, -(1 << 30), 0], dtype=np.int32)
        res = run_requant_micro(acc, 1, 0)
        assert res.acc.tolist() == [127, -128, 0]

    def test_zero_point(self):
        acc = np.array([0, 1 << 10], dtype=np.int32)
        res = run_requant_micro(acc, 1, 10, zero_point=5)
        assert res.acc.tolist() == [5, 6]

    def test_per_output_cost_matches_model_parameter(self):
        """The measured instructions/output validate the cost model's
        requant_per_output constant (~8)."""
        rng = np.random.default_rng(5)
        a1 = rng.integers(-1000, 1000, 32).astype(np.int32)
        a2 = rng.integers(-1000, 1000, 96).astype(np.int32)
        s1 = run_requant_micro(a1, 3, 8).stats
        s2 = run_requant_micro(a2, 3, 8).stats
        per_output = (s2.instructions - s1.instructions) / 64
        assert per_output == pytest.approx(8.0, abs=1.5)
