"""Failure-path tests for the microcode runners (repro.kernels.micro_runner)."""

import numpy as np
import pytest

from repro.kernels.micro_runner import (
    MemoryImage,
    run_conv_pair,
    run_fc_micro,
)
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune


def sparse_mat(k=4, r=64, seed=0):
    rng = np.random.default_rng(seed)
    w = nm_prune(rng.integers(-128, 128, (k, r)).astype(np.int8), FORMAT_1_8)
    return NMSparseMatrix.from_dense(w, FORMAT_1_8)


class TestMemoryImage:
    def test_alloc_alignment(self):
        img = MemoryImage(256)
        img.alloc(3)
        addr = img.alloc(4)
        assert addr % 4 == 0

    def test_exhaustion(self):
        img = MemoryImage(16)
        with pytest.raises(MemoryError):
            img.alloc(32)

    def test_place_roundtrip_int8(self):
        img = MemoryImage(64)
        data = np.array([-1, 2, -3], dtype=np.int8)
        addr = img.place(data)
        assert (img.mem[addr : addr + 3].view(np.int8) == data).all()

    def test_read_i32_little_endian(self):
        img = MemoryImage(64)
        addr = img.place(np.array([-5, 7], dtype=np.int32).view(np.uint8))
        assert img.read_i32(addr, 2).tolist() == [-5, 7]


class TestRunnerValidation:
    def test_conv_buffer_length_mismatch(self):
        mat = sparse_mat()
        with pytest.raises(ValueError, match="equal length"):
            run_conv_pair(
                "sparse-sw",
                mat,
                np.zeros(64, np.int8),
                np.zeros(32, np.int8),
            )

    def test_conv_wrong_reduce_dim(self):
        mat = sparse_mat(r=64)
        with pytest.raises(ValueError, match="dense_cols"):
            run_conv_pair(
                "sparse-sw",
                mat,
                np.zeros(32, np.int8),
                np.zeros(32, np.int8),
            )

    def test_conv_sparse_needs_matrix(self):
        with pytest.raises(TypeError, match="NMSparseMatrix"):
            run_conv_pair(
                "sparse-sw",
                np.zeros((4, 64), np.int8),
                np.zeros(64, np.int8),
                np.zeros(64, np.int8),
            )

    def test_conv_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown"):
            run_conv_pair(
                "dense-8x8",
                np.zeros((4, 64), np.int8),
                np.zeros(64, np.int8),
                np.zeros(64, np.int8),
            )
        with pytest.raises(ValueError, match="unknown"):
            run_conv_pair(
                "sparse-quantum",
                sparse_mat(),
                np.zeros(64, np.int8),
                np.zeros(64, np.int8),
            )

    def test_fc_wrong_dims(self):
        with pytest.raises(ValueError, match="do not match"):
            run_fc_micro("dense", np.zeros((4, 32), np.int8), np.zeros(64, np.int8))
        mat = sparse_mat(r=64)
        with pytest.raises(ValueError, match="dense_cols"):
            run_fc_micro("sparse-sw", mat, np.zeros(32, np.int8))

    def test_fc_sparse_needs_matrix(self):
        with pytest.raises(TypeError, match="NMSparseMatrix"):
            run_fc_micro("sparse-isa", np.zeros((4, 64), np.int8), np.zeros(64, np.int8))

    def test_fc_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown"):
            run_fc_micro("sparse-banana", sparse_mat(), np.zeros(64, np.int8))
