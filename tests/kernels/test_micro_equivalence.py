"""Three-way equivalence: numpy kernels == microcode on the core model
(through the behavioural xDecimate XFU) == naive reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.conv_sparse import sparse_matmul_acc
from repro.kernels.micro_runner import run_conv_pair, run_fc_micro
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune

FORMATS = [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]


def make_conv_case(rng, k, r, fmt=None):
    buf1 = rng.integers(-128, 128, r).astype(np.int8)
    buf2 = rng.integers(-128, 128, r).astype(np.int8)
    w = rng.integers(-128, 128, (k, r)).astype(np.int8)
    if fmt is None:
        return buf1, buf2, w
    wp = nm_prune(w, fmt)
    return buf1, buf2, NMSparseMatrix.from_dense(wp, fmt)


class TestConvDenseMicro:
    @pytest.mark.parametrize("variant", ["dense-1x2", "dense-4x2"])
    def test_matches_matmul(self, variant):
        rng = np.random.default_rng(0)
        buf1, buf2, w = make_conv_case(rng, 8, 72)
        res = run_conv_pair(variant, w, buf1, buf2)
        assert (res.acc[0] == buf1.astype(np.int32) @ w.astype(np.int32).T).all()
        assert (res.acc[1] == buf2.astype(np.int32) @ w.astype(np.int32).T).all()

    def test_4x2_rejects_bad_k(self):
        rng = np.random.default_rng(1)
        buf1, buf2, w = make_conv_case(rng, 6, 8)
        with pytest.raises(ValueError):
            run_conv_pair("dense-4x2", w, buf1, buf2)


class TestConvSparseMicro:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("variant", ["sparse-sw", "sparse-isa"])
    def test_matches_numpy_gather(self, fmt, variant):
        rng = np.random.default_rng(2)
        buf1, buf2, mat = make_conv_case(rng, 6, 9 * fmt.m, fmt)
        res = run_conv_pair(variant, mat, buf1, buf2)
        ref = sparse_matmul_acc(np.stack([buf1, buf2]), mat, "gather")
        assert (res.acc == ref.T.reshape(2, -1) if False else (res.acc[0] == ref[0]).all())
        assert (res.acc[0] == ref[0]).all() and (res.acc[1] == ref[1]).all()

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_sw_and_isa_agree(self, fmt):
        """The ISA extension must not change results, only latency."""
        rng = np.random.default_rng(3)
        buf1, buf2, mat = make_conv_case(rng, 4, 18 * fmt.m, fmt)
        sw = run_conv_pair("sparse-sw", mat, buf1, buf2)
        isa = run_conv_pair("sparse-isa", mat, buf1, buf2)
        assert (sw.acc == isa.acc).all()
        assert isa.stats.cycles < sw.stats.cycles

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_non_multiple_of_4_nnz_padding(self, fmt):
        """NNZ per channel not divisible by 4 exercises the zero-padded
        tail iterations (e.g. C=32 at 1:16 gives 18 NZ)."""
        rng = np.random.default_rng(4)
        r = 9 * fmt.m // 2 * 2  # even but odd block counts downstream
        r = 2 * fmt.m  # 2 blocks -> nnz=2, needs padding to 4
        buf1, buf2, mat = make_conv_case(rng, 4, r, fmt)
        res = run_conv_pair("sparse-sw", mat, buf1, buf2)
        ref = sparse_matmul_acc(np.stack([buf1, buf2]), mat, "dense")
        assert (res.acc[0] == ref[0]).all() and (res.acc[1] == ref[1]).all()


class TestFcMicro:
    def test_dense_matches(self):
        rng = np.random.default_rng(5)
        x = rng.integers(-128, 128, 64).astype(np.int8)
        w = rng.integers(-128, 128, (6, 64)).astype(np.int8)
        res = run_fc_micro("dense", w, x)
        assert (res.acc == x.astype(np.int32) @ w.astype(np.int32).T).all()

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("variant", ["sparse-sw", "sparse-isa"])
    def test_sparse_matches(self, fmt, variant):
        rng = np.random.default_rng(6)
        c = 8 * fmt.m
        x = rng.integers(-128, 128, c).astype(np.int8)
        w = nm_prune(rng.integers(-128, 128, (6 if variant == "sparse-sw" else 6, c)).astype(np.int8), fmt)
        mat = NMSparseMatrix.from_dense(w, fmt)
        res = run_fc_micro(variant, mat, x)
        ref = x.astype(np.int32) @ w.astype(np.int32).T
        assert (res.acc == ref).all()

    def test_isa_needs_even_k(self):
        rng = np.random.default_rng(7)
        w = nm_prune(rng.integers(-128, 128, (3, 32)).astype(np.int8), FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)
        x = rng.integers(-128, 128, 32).astype(np.int8)
        with pytest.raises(ValueError):
            run_fc_micro("sparse-isa", mat, x)

    def test_fc_isa_faster_than_sw(self):
        rng = np.random.default_rng(8)
        c = 16 * 8
        x = rng.integers(-128, 128, c).astype(np.int8)
        w = nm_prune(rng.integers(-128, 128, (8, c)).astype(np.int8), FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)
        sw = run_fc_micro("sparse-sw", mat, x)
        isa = run_fc_micro("sparse-isa", mat, x)
        assert (sw.acc == isa.acc).all()
        assert isa.stats.cycles < sw.stats.cycles


@settings(max_examples=10, deadline=None)
@given(
    fmt=st.sampled_from(FORMATS),
    variant=st.sampled_from(["sparse-sw", "sparse-isa"]),
    blocks=st.integers(2, 10),
    seed=st.integers(0, 2**31),
)
def test_conv_micro_property(fmt, variant, blocks, seed):
    """Microcode equals the numpy dense-scatter reference for arbitrary
    compliant weights — exercising packing, padding and the XFU."""
    rng = np.random.default_rng(seed)
    r = blocks * fmt.m
    buf1 = rng.integers(-128, 128, r).astype(np.int8)
    buf2 = rng.integers(-128, 128, r).astype(np.int8)
    w = nm_prune(rng.integers(-128, 128, (4, r)).astype(np.int8), fmt)
    mat = NMSparseMatrix.from_dense(w, fmt)
    res = run_conv_pair(variant, mat, buf1, buf2)
    ref = sparse_matmul_acc(np.stack([buf1, buf2]), mat, "dense")
    assert (res.acc[0] == ref[0]).all() and (res.acc[1] == ref[1]).all()
