"""Tests for the im2col transformation (repro.kernels.im2col)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.im2col import im2col, im2col_buffer_bytes, im2col_copy_cycles
from repro.kernels.shapes import ConvShape


def naive_im2col(x, shape):
    """Gold reference: explicit loops over the receptive field."""
    out = np.zeros(
        (shape.oy, shape.ox, shape.fy, shape.fx, shape.c), dtype=x.dtype
    )
    for oy in range(shape.oy):
        for ox in range(shape.ox):
            for fy in range(shape.fy):
                for fx in range(shape.fx):
                    iy = oy * shape.s + fy - shape.p
                    ix = ox * shape.s + fx - shape.p
                    if 0 <= iy < shape.iy and 0 <= ix < shape.ix:
                        out[oy, ox, fy, fx] = x[iy, ix]
    return out.reshape(shape.oy * shape.ox, shape.reduce_dim)


class TestIm2col:
    def test_matches_naive_3x3_pad1(self):
        shape = ConvShape(iy=8, ix=8, c=4, k=1, fy=3, fx=3, s=1, p=1)
        rng = np.random.default_rng(0)
        x = rng.integers(-128, 128, (8, 8, 4)).astype(np.int8)
        assert (im2col(x, shape) == naive_im2col(x, shape)).all()

    def test_matches_naive_stride2_nopad(self):
        shape = ConvShape(iy=9, ix=9, c=3, k=1, fy=3, fx=3, s=2, p=0)
        rng = np.random.default_rng(1)
        x = rng.integers(-128, 128, (9, 9, 3)).astype(np.int8)
        assert (im2col(x, shape) == naive_im2col(x, shape)).all()

    def test_1x1_filter_is_reshape(self):
        shape = ConvShape(iy=4, ix=4, c=8, k=1, fy=1, fx=1, s=1, p=0)
        rng = np.random.default_rng(2)
        x = rng.integers(-128, 128, (4, 4, 8)).astype(np.int8)
        assert (im2col(x, shape) == x.reshape(16, 8)).all()

    def test_padding_contributes_zeros(self):
        shape = ConvShape(iy=2, ix=2, c=1, k=1, fy=3, fx=3, s=1, p=1)
        x = np.ones((2, 2, 1), dtype=np.int8)
        cols = im2col(x, shape)
        # corner output: 4 in-bounds taps, 5 padded zeros
        assert cols[0].sum() == 4

    def test_rejects_wrong_input_shape(self):
        shape = ConvShape(iy=4, ix=4, c=2, k=1)
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4, 3), dtype=np.int8), shape)

    def test_flattening_order_is_fy_fx_c(self):
        """Column order must match the (FY, FX, C) weight flattening."""
        shape = ConvShape(iy=3, ix=3, c=2, k=1, fy=3, fx=3, s=1, p=0)
        x = np.arange(18, dtype=np.int8).reshape(3, 3, 2)
        cols = im2col(x, shape)
        assert (cols[0] == x.reshape(-1)).all()


class TestBufferAccounting:
    def test_paper_l1_formula(self):
        """Sec. 4.1.1: FX*FY*C*2*N_CORES bytes for the im2col buffers."""
        shape = ConvShape(iy=8, ix=8, c=64, k=16)
        assert im2col_buffer_bytes(shape, n_cores=8) == 3 * 3 * 64 * 2 * 8

    def test_copy_cycles_scale_with_bytes(self):
        shape_small = ConvShape(iy=8, ix=8, c=32, k=16)
        shape_big = ConvShape(iy=8, ix=8, c=64, k=16)
        assert im2col_copy_cycles(shape_big) == 2 * im2col_copy_cycles(shape_small)


@settings(max_examples=20, deadline=None)
@given(
    iy=st.integers(3, 10),
    ix=st.integers(3, 10),
    c=st.integers(1, 6),
    s=st.sampled_from([1, 2]),
    p=st.sampled_from([0, 1]),
    seed=st.integers(0, 2**31),
)
def test_im2col_matches_naive_property(iy, ix, c, s, p, seed):
    shape = ConvShape(iy=iy, ix=ix, c=c, k=1, fy=3, fx=3, s=s, p=p)
    rng = np.random.default_rng(seed)
    x = rng.integers(-128, 128, (iy, ix, c)).astype(np.int8)
    assert (im2col(x, shape) == naive_im2col(x, shape)).all()
