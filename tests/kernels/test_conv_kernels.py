"""Functional tests for dense and sparse conv kernels against a naive
reference convolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.conv_dense import conv2d_acc_dense, conv2d_dense
from repro.kernels.conv_sparse import conv2d_acc_sparse, conv2d_sparse
from repro.kernels.requant import QuantParams
from repro.kernels.shapes import ConvShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import prune_conv_weights


def naive_conv(x, weights, shape):
    """Gold reference: direct convolution loops, int32."""
    out = np.zeros((shape.oy, shape.ox, shape.k), dtype=np.int64)
    for oy in range(shape.oy):
        for ox in range(shape.ox):
            for k in range(shape.k):
                acc = 0
                for fy in range(shape.fy):
                    for fx in range(shape.fx):
                        iy = oy * shape.s + fy - shape.p
                        ix = ox * shape.s + fx - shape.p
                        if 0 <= iy < shape.iy and 0 <= ix < shape.ix:
                            acc += int(
                                np.dot(
                                    x[iy, ix].astype(np.int64),
                                    weights[k, fy, fx].astype(np.int64),
                                )
                            )
                out[oy, ox, k] = acc
    return out.astype(np.int32)


def random_layer(rng, shape):
    x = rng.integers(-128, 128, (shape.iy, shape.ix, shape.c)).astype(np.int8)
    w = rng.integers(-128, 128, (shape.k, shape.fy, shape.fx, shape.c)).astype(
        np.int8
    )
    return x, w


SMALL = ConvShape(iy=5, ix=6, c=8, k=4, fy=3, fx=3, s=1, p=1)


class TestDenseConv:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        x, w = random_layer(rng, SMALL)
        assert (conv2d_acc_dense(x, w, SMALL) == naive_conv(x, w, SMALL)).all()

    def test_stride_2(self):
        shape = ConvShape(iy=8, ix=8, c=4, k=3, fy=3, fx=3, s=2, p=1)
        rng = np.random.default_rng(1)
        x, w = random_layer(rng, shape)
        assert (conv2d_acc_dense(x, w, shape) == naive_conv(x, w, shape)).all()

    def test_pointwise(self):
        shape = ConvShape(iy=4, ix=4, c=16, k=8, fy=1, fx=1, s=1, p=0)
        rng = np.random.default_rng(2)
        x, w = random_layer(rng, shape)
        assert (conv2d_acc_dense(x, w, shape) == naive_conv(x, w, shape)).all()

    def test_requantised_output_dtype_and_range(self):
        rng = np.random.default_rng(3)
        x, w = random_layer(rng, SMALL)
        out = conv2d_dense(x, w, SMALL, QuantParams(multiplier=3, shift=12))
        assert out.dtype == np.int8
        assert out.shape == (SMALL.oy, SMALL.ox, SMALL.k)

    def test_bias_applied_before_requant(self):
        rng = np.random.default_rng(4)
        x, w = random_layer(rng, SMALL)
        bias = np.full(SMALL.k, 1 << 12, dtype=np.int64)
        out0 = conv2d_dense(x, w, SMALL, QuantParams(1, 12))
        out1 = conv2d_dense(x, w, SMALL, QuantParams(1, 12), bias=bias)
        diff = out1.astype(int) - out0.astype(int)
        assert (diff[(out1 < 127) & (out0 > -128)] == 1).all()

    def test_rejects_bad_weight_shape(self):
        with pytest.raises(ValueError):
            conv2d_acc_dense(
                np.zeros((5, 6, 8), dtype=np.int8),
                np.zeros((4, 3, 3, 9), dtype=np.int8),
                SMALL,
            )


class TestSparseConv:
    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    @pytest.mark.parametrize("method", ["gather", "dense"])
    def test_matches_naive_on_pruned_weights(self, fmt, method):
        shape = ConvShape(iy=4, ix=4, c=2 * fmt.m, k=4, fy=3, fx=3, s=1, p=1)
        rng = np.random.default_rng(5)
        x, w = random_layer(rng, shape)
        wp = prune_conv_weights(w, fmt)
        mat = NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), fmt)
        acc = conv2d_acc_sparse(x, mat, shape, method=method)
        assert (acc == naive_conv(x, wp, shape)).all()

    def test_gather_and_dense_methods_identical(self):
        shape = ConvShape(iy=6, ix=5, c=16, k=40, fy=3, fx=3, s=1, p=1)
        rng = np.random.default_rng(6)
        x, w = random_layer(rng, shape)
        wp = prune_conv_weights(w, FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), FORMAT_1_8)
        a = conv2d_acc_sparse(x, mat, shape, method="gather")
        b = conv2d_acc_sparse(x, mat, shape, method="dense")
        assert (a == b).all()

    def test_k_chunking_boundary(self):
        """K above the 32-channel gather chunk exercises the chunk loop."""
        shape = ConvShape(iy=3, ix=3, c=8, k=70, fy=1, fx=1, s=1, p=0)
        rng = np.random.default_rng(7)
        x, w = random_layer(rng, shape)
        wp = prune_conv_weights(w, FORMAT_1_4)
        mat = NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), FORMAT_1_4)
        acc = conv2d_acc_sparse(x, mat, shape)
        assert (acc == naive_conv(x, wp, shape)).all()

    def test_sparse_equals_dense_kernel_on_same_weights(self):
        """A sparse kernel over pruned weights == dense kernel over the
        scattered matrix — the core correctness claim of Sec. 4.1.2."""
        shape = ConvShape(iy=5, ix=5, c=16, k=8)
        rng = np.random.default_rng(8)
        x, w = random_layer(rng, shape)
        wp = prune_conv_weights(w, FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), FORMAT_1_8)
        assert (
            conv2d_acc_sparse(x, mat, shape)
            == conv2d_acc_dense(x, wp, shape)
        ).all()

    def test_requantised_path(self):
        shape = ConvShape(iy=4, ix=4, c=8, k=4)
        rng = np.random.default_rng(9)
        x, w = random_layer(rng, shape)
        wp = prune_conv_weights(w, FORMAT_1_4)
        mat = NMSparseMatrix.from_dense(wp.reshape(shape.k, -1), FORMAT_1_4)
        out = conv2d_sparse(x, mat, shape, QuantParams(5, 14))
        ref = conv2d_dense(x, wp, shape, QuantParams(5, 14))
        assert (out == ref).all()

    def test_rejects_mismatched_weights(self):
        mat = NMSparseMatrix.from_dense(np.zeros((4, 32), dtype=np.int8), FORMAT_1_8)
        with pytest.raises(ValueError):
            conv2d_acc_sparse(np.zeros((4, 4, 8), dtype=np.int8), mat, SMALL)

    def test_rejects_unknown_method(self):
        shape = ConvShape(iy=3, ix=3, c=8, k=2, fy=1, fx=1, p=0)
        mat = NMSparseMatrix.from_dense(np.zeros((2, 8), dtype=np.int8), FORMAT_1_4)
        with pytest.raises(ValueError, match="method"):
            conv2d_acc_sparse(
                np.zeros((3, 3, 8), dtype=np.int8), mat, shape, method="nope"
            )


@settings(max_examples=15, deadline=None)
@given(
    fmt=st.sampled_from([FORMAT_1_4, FORMAT_1_8, FORMAT_1_16]),
    c_blocks=st.integers(1, 3),
    k=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_sparse_conv_property(fmt, c_blocks, k, seed):
    """Sparse kernels agree with the dense kernel on pruned weights for
    arbitrary N:M-compliant layers."""
    shape = ConvShape(iy=4, ix=3, c=c_blocks * fmt.m, k=k, fy=3, fx=3, s=1, p=1)
    rng = np.random.default_rng(seed)
    x = rng.integers(-128, 128, (shape.iy, shape.ix, shape.c)).astype(np.int8)
    w = rng.integers(-128, 128, (k, 3, 3, shape.c)).astype(np.int8)
    wp = prune_conv_weights(w, fmt)
    mat = NMSparseMatrix.from_dense(wp.reshape(k, -1), fmt)
    assert (
        conv2d_acc_sparse(x, mat, shape) == conv2d_acc_dense(x, wp, shape)
    ).all()
