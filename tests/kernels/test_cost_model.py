"""Tests for the layer cost model (repro.kernels.cost_model)."""

import pytest

from repro.kernels.cost_model import (
    DEFAULT_PARAMS,
    INNER_ITER_CYCLES,
    LOADS_PER_ITER,
    conv_layer_cycles,
    fc_layer_cycles,
    iter_cycles,
    iter_equiv_macs,
    weight_stream_bytes,
)
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8

SHAPE = ConvShape(iy=8, ix=8, c=64, k=256)
FC = FcShape(c=512, k=256)


class TestIterCycles:
    def test_dense_has_no_scatter_penalty(self):
        base = INNER_ITER_CYCLES[("conv", "dense-1x2", 0)]
        loads = LOADS_PER_ITER[("conv", "dense-1x2", 0)]
        got = iter_cycles("conv", "dense-1x2", None, DEFAULT_PARAMS)
        expected = (
            base
            + DEFAULT_PARAMS.dense_extra
            + DEFAULT_PARAMS.load_contention * loads
        )
        assert got == pytest.approx(expected)

    def test_scatter_penalty_grows_with_m(self):
        cycles = [
            iter_cycles("conv", "sparse-sw", f, DEFAULT_PARAMS)
            for f in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)
        ]
        assert cycles == sorted(cycles)

    def test_isa_cheaper_than_sw_per_iter(self):
        for fmt in (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16):
            sw = iter_cycles("conv", "sparse-sw", fmt, DEFAULT_PARAMS)
            isa = iter_cycles("conv", "sparse-isa", fmt, DEFAULT_PARAMS)
            assert isa < sw

    def test_sparse_without_format_rejected(self):
        with pytest.raises(ValueError, match="NMFormat"):
            iter_cycles("conv", "sparse-sw", None, DEFAULT_PARAMS)


class TestEquivMacs:
    def test_conv_values(self):
        assert iter_equiv_macs("conv", "dense-4x2", None) == 32
        assert iter_equiv_macs("conv", "dense-1x2", None) == 8
        assert iter_equiv_macs("conv", "sparse-sw", FORMAT_1_8) == 64
        assert iter_equiv_macs("conv", "sparse-isa", FORMAT_1_16) == 128

    def test_fc_values(self):
        assert iter_equiv_macs("fc", "dense", None) == 8
        assert iter_equiv_macs("fc", "sparse-sw", FORMAT_1_4) == 16
        assert iter_equiv_macs("fc", "sparse-isa", FORMAT_1_4) == 32


class TestWeightStream:
    def test_dense_bytes(self):
        assert weight_stream_bytes("conv", "dense-4x2", 64, 576, None) == 64 * 576

    def test_sparse_sw_bytes_match_format(self):
        got = weight_stream_bytes("conv", "sparse-sw", 64, 576, FORMAT_1_8)
        assert got == pytest.approx(64 * 576 * 1.5 / 8)

    def test_isa_conv_pays_duplication(self):
        sw = weight_stream_bytes("conv", "sparse-sw", 64, 576, FORMAT_1_8)
        isa = weight_stream_bytes("conv", "sparse-isa", 64, 576, FORMAT_1_8)
        fc_isa = weight_stream_bytes("fc", "sparse-isa", 64, 576, FORMAT_1_8)
        assert isa > sw
        assert fc_isa == pytest.approx(sw)  # FC interleaves, no duplication


class TestConvLayer:
    def test_breakdown_positive_and_totals(self):
        bd = conv_layer_cycles(SHAPE, "dense-4x2")
        assert bd.compute > 0 and bd.im2col > 0 and bd.overhead > 0
        assert bd.total == pytest.approx(
            bd.compute + bd.im2col + bd.overhead + bd.dma
        )
        assert bd.macs == SHAPE.macs

    def test_mac_per_cycle_below_theoretical_cluster_peak(self):
        bd = conv_layer_cycles(SHAPE, "dense-4x2")
        assert bd.macs_per_cycle < 2.28 * 8

    def test_sparse_equiv_macs_exceed_dense_peak(self):
        """The paper's MAC/cyc convention: dense-equivalent throughput
        of sparse kernels can exceed the hardware peak."""
        bd = conv_layer_cycles(SHAPE, "sparse-isa", FORMAT_1_16)
        assert bd.macs_per_cycle > 2.28 * 8

    def test_4x2_requires_k_multiple_of_4(self):
        with pytest.raises(ValueError, match="K % 4"):
            conv_layer_cycles(ConvShape(iy=4, ix=4, c=8, k=6), "dense-4x2")

    def test_im2col_identical_across_variants(self):
        """Sec. 5.2: the im2col step is identical in sparse and dense
        kernels."""
        dense = conv_layer_cycles(SHAPE, "dense-1x2")
        sparse = conv_layer_cycles(SHAPE, "sparse-sw", FORMAT_1_8)
        assert dense.im2col == pytest.approx(sparse.im2col)


class TestFcLayer:
    def test_tokens_scale_linearly(self):
        one = fc_layer_cycles(FC, "dense")
        many = fc_layer_cycles(FcShape(c=512, k=256, tokens=10), "dense")
        assert many.total == pytest.approx(10 * one.total)
        assert many.macs == 10 * one.macs

    def test_dma_shrinks_with_sparsity(self):
        dense = fc_layer_cycles(FC, "dense")
        sparse = fc_layer_cycles(FC, "sparse-sw", FORMAT_1_16)
        assert sparse.dma < dense.dma

    def test_odd_k_rejected_for_paired_kernels(self):
        with pytest.raises(ValueError, match="even"):
            fc_layer_cycles(FcShape(c=64, k=3), "dense")

    def test_sw_1_4_compute_slower_but_total_close(self):
        """The Sec. 5.2 FC story: 1:4 SW loses on compute, wins on
        weight traffic, nets out roughly even."""
        dense = fc_layer_cycles(FcShape(c=2048, k=256), "dense")
        sparse = fc_layer_cycles(FcShape(c=2048, k=256), "sparse-sw", FORMAT_1_4)
        assert sparse.compute > dense.compute
        assert sparse.dma < dense.dma
        assert dense.total / sparse.total == pytest.approx(1.0, abs=0.25)
