"""Tests for the unstructured CSR comparator kernel
(repro.kernels.csr_kernel)."""

import numpy as np
import pytest

from repro.kernels.csr_kernel import csr_fc_layer_cycles, fc_acc_csr
from repro.kernels.cost_model import fc_layer_cycles
from repro.kernels.fc_dense import fc_acc_dense
from repro.kernels.shapes import FcShape
from repro.sparsity.csr import CSRMatrix
from repro.sparsity.nm import FORMAT_1_4, FORMAT_1_8


def unstructured(rng, rows, cols, density):
    w = rng.integers(-128, 128, (rows, cols)).astype(np.int8)
    mask = rng.random((rows, cols)) < density
    return np.where(mask, w, 0).astype(np.int8)


class TestFunctional:
    def test_matches_dense_matmul(self):
        rng = np.random.default_rng(0)
        w = unstructured(rng, 8, 64, 0.25)
        x = rng.integers(-128, 128, 64).astype(np.int8)
        csr = CSRMatrix.from_dense(w)
        got = fc_acc_csr(x, csr)
        ref = fc_acc_dense(x, w, FcShape(c=64, k=8))
        assert (got == ref).all()

    def test_batched_input(self):
        rng = np.random.default_rng(1)
        w = unstructured(rng, 4, 32, 0.3)
        x = rng.integers(-128, 128, (5, 32)).astype(np.int8)
        csr = CSRMatrix.from_dense(w)
        assert (fc_acc_csr(x, csr) == fc_acc_dense(x, w, FcShape(c=32, k=4, tokens=5))).all()

    def test_empty_rows_handled(self):
        w = np.zeros((3, 16), dtype=np.int8)
        w[1, 5] = 7
        csr = CSRMatrix.from_dense(w)
        x = np.ones(16, dtype=np.int8)
        out = fc_acc_csr(x, csr)
        assert out[0].tolist() == [0, 7, 0]

    def test_dim_mismatch_rejected(self):
        csr = CSRMatrix.from_dense(np.zeros((2, 16), np.int8))
        with pytest.raises(ValueError, match="input dim"):
            fc_acc_csr(np.zeros(8, np.int8), csr)


class TestCost:
    SHAPE = FcShape(c=1024, k=256)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            csr_fc_layer_cycles(self.SHAPE, 1.0)
        with pytest.raises(ValueError):
            csr_fc_layer_cycles(self.SHAPE, -0.1)

    def test_cycles_fall_with_sparsity(self):
        c = [csr_fc_layer_cycles(self.SHAPE, s).total for s in (0.5, 0.75, 0.9)]
        assert c == sorted(c, reverse=True)

    def test_paper_claim_csr_loses_to_nm_at_iso_sparsity(self):
        """Sec. 2.1/3: unstructured decoding overheads make CSR slower
        than the N:M kernels at the same sparsity level."""
        for fmt in (FORMAT_1_4, FORMAT_1_8):
            csr = csr_fc_layer_cycles(self.SHAPE, fmt.sparsity).total
            nm = fc_layer_cycles(self.SHAPE, "sparse-sw", fmt).total
            assert nm < csr

    def test_paper_claim_csr_slower_than_dense_at_75(self):
        """Sec. 2.1: 'for non-extreme sparsity ratios, layers with
        unstructured sparsity are often even slower than dense'."""
        dense = fc_layer_cycles(self.SHAPE, "dense").total
        csr = csr_fc_layer_cycles(self.SHAPE, 0.75).total
        assert csr > dense

    def test_csr_wins_at_extreme_sparsity(self):
        """...but extreme unstructured sparsity does pay off."""
        dense = fc_layer_cycles(self.SHAPE, "dense").total
        csr = csr_fc_layer_cycles(self.SHAPE, 0.97).total
        assert csr < dense

    def test_tokens_scale(self):
        one = csr_fc_layer_cycles(self.SHAPE, 0.9).total
        five = csr_fc_layer_cycles(
            FcShape(c=1024, k=256, tokens=5), 0.9
        ).total
        assert five == pytest.approx(5 * one)
