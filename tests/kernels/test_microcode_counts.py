"""Instruction-count ground truth: the microcoded inner loops must match
the paper's per-iteration instruction counts (Sec. 4.1 / 4.2, Figs. 4-5),
and the derived MACs/instruction peaks must match the quoted values."""

import numpy as np
import pytest

from repro.kernels import microcode as mc
from repro.kernels.micro_runner import run_conv_pair, run_fc_micro
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8, NMSparseMatrix
from repro.sparsity.pruning import nm_prune


def _measure_conv(variant, fmt, k, r1, r2):
    """Per-iteration instruction/cycle deltas between two reduce dims."""
    rng = np.random.default_rng(0)

    def run(r):
        buf1 = rng.integers(-128, 128, r).astype(np.int8)
        buf2 = rng.integers(-128, 128, r).astype(np.int8)
        if fmt is None:
            w = rng.integers(-128, 128, (k, r)).astype(np.int8)
            return run_conv_pair(variant, w, buf1, buf2)
        w = nm_prune(rng.integers(-128, 128, (k, r)).astype(np.int8), fmt)
        return run_conv_pair(variant, NMSparseMatrix.from_dense(w, fmt), buf1, buf2)

    s1, s2 = run(r1).stats, run(r2).stats
    m = fmt.m if fmt else 1
    group = 4 if fmt is None else 4 * m
    iters = (r2 - r1) // group  # extra inner iterations per channel
    dinstr = (s2.instructions - s1.instructions) / (k * iters)
    dcycles = (s2.cycles - s1.cycles) / (k * iters)
    return dinstr, dcycles


class TestConvInnerLoopCounts:
    def test_dense_1x2_is_5_instructions(self):
        dinstr, dcycles = _measure_conv("dense-1x2", None, 4, 64, 128)
        assert dinstr == pytest.approx(5.0)
        assert dcycles == pytest.approx(5.0)  # well-scheduled: no stalls

    def test_dense_4x2_is_14_instructions(self):
        rng = np.random.default_rng(1)

        def run(r):
            w = rng.integers(-128, 128, (4, r)).astype(np.int8)
            b = rng.integers(-128, 128, r).astype(np.int8)
            return run_conv_pair("dense-4x2", w, b, b).stats

        s1, s2 = run(64), run(128)
        per_group_iter = (s2.instructions - s1.instructions) / (16)  # K/4=1 group
        assert per_group_iter == pytest.approx(14.0)

    @pytest.mark.parametrize("fmt,expected", [(FORMAT_1_8, 22.0), (FORMAT_1_16, 22.0)])
    def test_sparse_sw_is_22_instructions(self, fmt, expected):
        dinstr, _ = _measure_conv("sparse-sw", fmt, 4, 16 * fmt.m, 32 * fmt.m)
        assert dinstr == pytest.approx(expected)

    def test_sparse_sw_1_4_is_23_5_instructions(self):
        """23 in-loop instructions + the OFFSETS word load amortised
        over its 4-iteration group (paper: '23, one less load')."""
        dinstr, _ = _measure_conv("sparse-sw", FORMAT_1_4, 4, 16 * 16, 32 * 16)
        assert dinstr == pytest.approx(23.5)

    @pytest.mark.parametrize("fmt", [FORMAT_1_8, FORMAT_1_16])
    def test_sparse_isa_is_12_instructions(self, fmt):
        dinstr, dcycles = _measure_conv("sparse-isa", fmt, 4, 16 * fmt.m, 32 * fmt.m)
        assert dinstr == pytest.approx(12.0)
        assert dcycles == pytest.approx(12.0)  # XFU forwarding: no stalls

    def test_sparse_isa_1_4_is_11_5_instructions(self):
        dinstr, _ = _measure_conv("sparse-isa", FORMAT_1_4, 4, 32 * 4, 64 * 4)
        assert dinstr == pytest.approx(11.5)

    def test_isa_speedup_over_sw_close_to_1_9(self):
        """Sec. 1: the ISA extension buys up to 1.9x over the SW kernels
        (22/12 = 1.83 at iso-iteration)."""
        _, sw = _measure_conv("sparse-sw", FORMAT_1_8, 4, 128, 256)
        _, isa = _measure_conv("sparse-isa", FORMAT_1_8, 4, 128, 256)
        assert sw / isa == pytest.approx(1.83, abs=0.1)


class TestFcInnerLoopCounts:
    def _measure_fc(self, variant, fmt, k, c1, c2):
        rng = np.random.default_rng(2)

        def run(c):
            x = rng.integers(-128, 128, c).astype(np.int8)
            if fmt is None:
                w = rng.integers(-128, 128, (k, c)).astype(np.int8)
                return run_fc_micro(variant, w, x).stats
            w = nm_prune(rng.integers(-128, 128, (k, c)).astype(np.int8), fmt)
            return run_fc_micro(variant, NMSparseMatrix.from_dense(w, fmt), x).stats

        s1, s2 = run(c1), run(c2)
        m = fmt.m if fmt else 1
        group = 4 if fmt is None else 4 * m
        iters = (c2 - c1) // group
        units = k if (fmt and variant == "sparse-sw") else k // 2
        return (s2.instructions - s1.instructions) / (units * iters)

    def test_dense_is_5_instructions(self):
        assert self._measure_fc("dense", None, 4, 64, 128) == pytest.approx(5.0)

    @pytest.mark.parametrize("fmt", [FORMAT_1_8, FORMAT_1_16])
    def test_sparse_sw_is_16_instructions(self, fmt):
        got = self._measure_fc("sparse-sw", fmt, 4, 16 * fmt.m, 32 * fmt.m)
        assert got == pytest.approx(16.0)

    @pytest.mark.parametrize("fmt", [FORMAT_1_8, FORMAT_1_16])
    def test_sparse_isa_is_13_instructions(self, fmt):
        got = self._measure_fc("sparse-isa", fmt, 4, 16 * fmt.m, 32 * fmt.m)
        assert got == pytest.approx(13.0)


class TestPeakMacsPerInstruction:
    """The paper's quoted peaks follow from the body lengths."""

    def test_conv_peaks(self):
        assert 32 / mc.INNER_BODY_LENGTH[("conv", "dense-4x2")] == pytest.approx(
            2.28, abs=0.01
        )
        assert 8 / mc.INNER_BODY_LENGTH[("conv", "dense-1x2")] == pytest.approx(1.6)
        assert 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-sw", 8)] == pytest.approx(
            0.36, abs=0.005
        )
        assert 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-sw", 4)] == pytest.approx(
            0.35, abs=0.005
        )
        assert 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-isa", 8)] == pytest.approx(
            0.66, abs=0.007
        )

    def test_conv_dense_equivalent_peaks(self):
        """Sec. 4.1.2/4.1.3: 1.4/2.88/5.76 (SW) and 2.64/5.28/10.56 (ISA)."""
        sw = {
            4: 4 * 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-sw", 4)],
            8: 8 * 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-sw", 8)],
            16: 16 * 8 / mc.INNER_BODY_LENGTH[("conv", "sparse-sw", 16)],
        }
        assert sw[4] == pytest.approx(1.4, abs=0.01)
        assert sw[8] == pytest.approx(2.88, abs=0.03)
        assert sw[16] == pytest.approx(5.76, abs=0.06)
        isa = {m: m * 8 / 12 for m in (4, 8, 16)}
        assert isa[4] == pytest.approx(2.64, abs=0.03)
        assert isa[8] == pytest.approx(5.28, abs=0.06)
        assert isa[16] == pytest.approx(10.56, abs=0.12)

    def test_fc_peaks(self):
        """Sec. 4.2: dense 1.6, SW 0.25 (-> 1.0/2.0/4.0 equivalent),
        ISA 0.61 (-> 2.44/4.88/9.76 equivalent)."""
        assert 8 / mc.INNER_BODY_LENGTH[("fc", "dense")] == pytest.approx(1.6)
        assert 4 / mc.INNER_BODY_LENGTH[("fc", "sparse-sw", 8)] == pytest.approx(0.25)
        assert 8 / mc.INNER_BODY_LENGTH[("fc", "sparse-isa", 8)] == pytest.approx(
            0.61, abs=0.01
        )
        for m in (4, 8, 16):
            assert 4 * m / 16 == pytest.approx(m / 4)  # 1.0, 2.0, 4.0
            assert 8 * m / 13 == pytest.approx({4: 2.44, 8: 4.88, 16: 9.76}[m], rel=0.02)

    def test_fc_sw_1_4_cannot_beat_dense(self):
        """Sec. 4.2.2: the 1:4 SW FC kernel's theoretical equivalent
        throughput (1.0) does not reach the dense baseline's 1.6."""
        equiv = 4 * 4 / mc.INNER_BODY_LENGTH[("fc", "sparse-sw", 4)]
        assert equiv < 1.6
