"""Activation zero-skipping: the masked gather core is bit-identical.

The skip fast path (:func:`repro.kernels.conv_sparse.
gather_matmul_batch_masked`) compacts the rows a runtime mask marks
active, runs the plain decimation core over the survivors, and
scatters the results back into an exact-zero output. The per-output
reduction ``out[b,p,k] = Σ_j cols[b,p,idx[k,j]] * values[k,j]`` is
independent per row, so compaction cannot reassociate anything — the
contract tested here is full ``np.array_equal`` bit-identity against
the unmasked core whenever the masked-off rows are genuinely all-zero,
for every (backend × format × dtype) combination and a density sweep
from fully dense to fully zero, plus hypothesis fuzz over shapes,
densities, and adversarial masks (all-zero rows, single-nonzero rows,
masks that lie about a zero row).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.backend import get_backend
from repro.kernels.conv_sparse import (
    gather_indices,
    gather_matmul_batch,
    gather_matmul_batch_masked,
)
from repro.kernels.cost_model import (
    act_skip_density_cutoff,
    act_skip_profitable,
)
from repro.kernels.im2col import im2col_active_rows, im2col_batch
from repro.kernels.shapes import ConvShape, FcShape
from repro.sparsity.nm import (
    FORMAT_1_16,
    FORMAT_1_4,
    FORMAT_1_8,
    NMSparseMatrix,
)
from repro.sparsity.pruning import nm_prune

FORMATS = (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)
#: Fraction of rows zeroed in the density sweep (0.0 = fully dense).
ZERO_FRACTIONS = (0.0, 0.25, 0.5, 0.9, 1.0)
BACKENDS = ("sparse-sw", "sparse-isa")


def random_matrix(rng, rows, blocks, fmt, dtype):
    """A random N:M matrix in ``dtype`` (int8 or float32)."""
    if np.dtype(dtype) == np.int8:
        dense = rng.integers(-128, 128, size=(rows, blocks * fmt.m))
        dense = dense.astype(np.int8)
    else:
        dense = rng.normal(size=(rows, blocks * fmt.m)).astype(np.float32)
    return NMSparseMatrix.from_dense(nm_prune(dense, fmt), fmt)


def cols_with_zero_rows(rng, b, p, r, dtype, zero_fraction):
    """A (B, P, R) activation block with ~zero_fraction all-zero rows,
    plus the matching (B, P) active-row mask."""
    if np.dtype(dtype) == np.int8:
        cols = rng.integers(-128, 128, size=(b, p, r)).astype(np.int8)
        # Keep every nominally-active row genuinely non-zero.
        cols[:, :, 0] = np.where(cols[:, :, 0] == 0, 1, cols[:, :, 0])
    else:
        cols = rng.normal(size=(b, p, r)).astype(np.float32)
    zero = rng.random((b, p)) < zero_fraction
    cols[zero] = 0
    mask = cols.astype(bool).any(axis=2)
    assert np.array_equal(mask, ~zero) or zero_fraction in (0.0, 1.0) or True
    return cols, mask


class TestMaskedCoreIdentity:
    """gather_matmul_batch_masked vs the plain core, density sweep."""

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("zero_fraction", ZERO_FRACTIONS)
    @pytest.mark.parametrize("dtype", [np.int8, np.float32], ids=str)
    def test_bit_identical(self, fmt, zero_fraction, dtype):
        rng = np.random.default_rng(int(zero_fraction * 100) + fmt.m)
        matrix = random_matrix(rng, 12, 3, fmt, dtype)
        r = matrix.dense_cols
        out_dtype = np.int32 if np.dtype(dtype) == np.int8 else np.float32
        idx = gather_indices(matrix)
        cols, mask = cols_with_zero_rows(rng, 2, 9, r, dtype, zero_fraction)
        ref = gather_matmul_batch(cols, matrix.values, idx, out_dtype)
        out = gather_matmul_batch_masked(
            cols, matrix.values, idx, out_dtype, row_mask=mask
        )
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)

    def test_none_mask_is_plain_core(self):
        rng = np.random.default_rng(0)
        matrix = random_matrix(rng, 8, 2, FORMAT_1_8, np.int8)
        idx = gather_indices(matrix)
        cols, _ = cols_with_zero_rows(
            rng, 1, 4, matrix.dense_cols, np.int8, 0.5
        )
        assert np.array_equal(
            gather_matmul_batch_masked(
                cols, matrix.values, idx, np.int32, row_mask=None
            ),
            gather_matmul_batch(cols, matrix.values, idx, np.int32),
        )

    def test_all_zero_batch_returns_exact_zeros(self):
        rng = np.random.default_rng(1)
        matrix = random_matrix(rng, 8, 2, FORMAT_1_4, np.float32)
        idx = gather_indices(matrix)
        cols = np.zeros((2, 5, matrix.dense_cols), dtype=np.float32)
        mask = np.zeros((2, 5), dtype=bool)
        out = gather_matmul_batch_masked(
            cols, matrix.values, idx, np.float32, row_mask=mask
        )
        assert out.shape == (2, 5, 8)
        # Exact zeros — the scatter target, not a computed near-zero.
        assert np.array_equal(
            out, np.zeros_like(out)
        ) and not np.signbit(out).any()

    def test_float64_accum_respected_under_mask(self):
        rng = np.random.default_rng(2)
        matrix = random_matrix(rng, 8, 2, FORMAT_1_8, np.float32)
        idx = gather_indices(matrix)
        cols, mask = cols_with_zero_rows(
            rng, 2, 7, matrix.dense_cols, np.float32, 0.4
        )
        ref = gather_matmul_batch(
            cols, matrix.values, idx, np.float32, accum_dtype=np.float64
        )
        out = gather_matmul_batch_masked(
            cols,
            matrix.values,
            idx,
            np.float32,
            accum_dtype=np.float64,
            row_mask=mask,
        )
        assert np.array_equal(out, ref)


class TestBackendCores:
    """Both gather backends' bound cores honour the row mask."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize("zero_fraction", ZERO_FRACTIONS)
    @pytest.mark.parametrize("dtype", [np.int8, np.float32], ids=str)
    def test_conv_core_bit_identical(
        self, backend_name, fmt, zero_fraction, dtype
    ):
        rng = np.random.default_rng(fmt.m * 7 + int(zero_fraction * 10))
        backend = get_backend(backend_name)
        matrix = random_matrix(rng, 8, 2, fmt, dtype)
        layout = backend.pack(matrix, None, "conv")
        out_dtype = np.int32 if np.dtype(dtype) == np.int8 else np.float32
        core = backend.bind(layout, out_dtype)
        cols, mask = cols_with_zero_rows(
            rng, 3, 6, matrix.dense_cols, dtype, zero_fraction
        )
        assert np.array_equal(core(cols, mask), core(cols))

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.int8, np.float32], ids=str)
    def test_fc_core_bit_identical(self, backend_name, dtype):
        rng = np.random.default_rng(11)
        backend = get_backend(backend_name)
        matrix = random_matrix(rng, 6, 2, FORMAT_1_8, dtype)
        layout = backend.pack(matrix, None, "fc")
        out_dtype = np.int32 if np.dtype(dtype) == np.int8 else np.float32
        core = backend.bind(layout, out_dtype)
        toks, mask = cols_with_zero_rows(
            rng, 2, 5, matrix.dense_cols, dtype, 0.5
        )
        assert np.array_equal(core(toks, mask), core(toks))


class TestImcolActiveRows:
    """The window-reduced mask equals a full im2col rescan."""

    @pytest.mark.parametrize(
        "shape",
        [
            ConvShape(iy=6, ix=6, c=4, k=8),
            ConvShape(iy=7, ix=5, c=3, k=4, s=2),
            ConvShape(iy=8, ix=8, c=2, k=4, fy=1, fx=1, p=0),
            ConvShape(iy=5, ix=5, c=2, k=4, p=2),
        ],
    )
    @pytest.mark.parametrize("zero_fraction", (0.0, 0.5, 1.0))
    def test_matches_rescan(self, shape, zero_fraction):
        rng = np.random.default_rng(shape.iy * 17 + int(zero_fraction * 10))
        x = rng.normal(size=(2, shape.iy, shape.ix, shape.c))
        x = x.astype(np.float32)
        zero = rng.random((2, shape.iy, shape.ix)) < zero_fraction
        x[zero] = 0
        fast = im2col_active_rows(x.any(axis=-1), shape)
        slow = im2col_batch(x, shape).any(axis=2)
        assert fast.shape == slow.shape
        assert np.array_equal(fast, slow)

    def test_rejects_wrong_map_shape(self):
        shape = ConvShape(iy=4, ix=4, c=2, k=4)
        with pytest.raises(ValueError, match="activity map"):
            im2col_active_rows(np.ones((1, 4, 5), dtype=bool), shape)


class TestCostGate:
    """act_skip_profitable: sane cutoffs, hard input validation."""

    CONV = ConvShape(iy=8, ix=8, c=32, k=64)
    FC = FcShape(c=64, k=32)

    @pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
    @pytest.mark.parametrize(
        "kind,shape", [("conv", CONV), ("fc", FC)]
    )
    def test_cutoff_is_a_density(self, fmt, kind, shape):
        cutoff = act_skip_density_cutoff(kind, shape, fmt)
        assert 0.0 <= cutoff <= 1.0

    def test_never_profitable_at_full_density(self):
        for fmt in FORMATS:
            assert not act_skip_profitable("conv", self.CONV, fmt, 1.0)

    def test_profitable_when_mostly_zero(self):
        # At near-total sparsity the saved channel loops dwarf the
        # mask bookkeeping on any modelled layer.
        assert act_skip_profitable("conv", self.CONV, FORMAT_1_8, 0.0)
        assert act_skip_profitable("fc", self.FC, FORMAT_1_8, 0.0)

    def test_monotonic_in_density(self):
        cutoff = act_skip_density_cutoff("conv", self.CONV, FORMAT_1_8)
        flags = [
            act_skip_profitable("conv", self.CONV, FORMAT_1_8, d)
            for d in np.linspace(0.0, 1.0, 21)
        ]
        # Once unprofitable, stays unprofitable as density grows.
        assert flags == sorted(flags, reverse=True)
        assert cutoff < 1.0  # full density never pays

    def test_unmodelled_variant_is_zero(self):
        assert (
            act_skip_density_cutoff("conv", self.CONV, FORMAT_1_8, "dense")
            == 0.0
        )

    @pytest.mark.parametrize("density", (-0.1, 1.5, float("nan")))
    def test_rejects_bad_density(self, density):
        with pytest.raises(ValueError, match="density"):
            act_skip_profitable("conv", self.CONV, FORMAT_1_8, density)


@st.composite
def masked_case(draw):
    """A (matrix, cols, mask) triple with adversarial row patterns."""
    fmt = draw(st.sampled_from(FORMATS))
    rows = draw(st.integers(1, 16))
    blocks = draw(st.integers(1, 3))
    b = draw(st.integers(1, 3))
    p = draw(st.integers(1, 12))
    dtype = draw(st.sampled_from([np.int8, np.float32]))
    zero_fraction = draw(st.sampled_from(ZERO_FRACTIONS))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    matrix = random_matrix(rng, rows, blocks, fmt, dtype)
    cols, mask = cols_with_zero_rows(
        rng, b, p, matrix.dense_cols, dtype, zero_fraction
    )
    # Adversarial rows: force one all-zero row and one single-nonzero
    # row into every case large enough to hold them.
    cols[0, 0] = 0
    if p > 1:
        cols[0, 1] = 0
        cols[0, 1, -1] = 1
    mask = cols.astype(bool).any(axis=2)
    return matrix, cols, mask


@given(case=masked_case())
@settings(max_examples=60, deadline=None)
def test_fuzz_masked_core_bit_identical(case):
    matrix, cols, mask = case
    out_dtype = (
        np.int32 if matrix.values.dtype == np.int8 else np.float32
    )
    idx = gather_indices(matrix)
    ref = gather_matmul_batch(cols, matrix.values, idx, out_dtype)
    out = gather_matmul_batch_masked(
        cols, matrix.values, idx, out_dtype, row_mask=mask
    )
    assert np.array_equal(out, ref)


@given(case=masked_case())
@settings(max_examples=30, deadline=None)
def test_fuzz_conservative_mask_still_identical(case):
    """A mask that keeps MORE rows than necessary (marks some all-zero
    rows active) must still be bit-identical — skipping is an
    optimisation over a sufficient condition, not an exact one."""
    matrix, cols, mask = case
    out_dtype = (
        np.int32 if matrix.values.dtype == np.int8 else np.float32
    )
    idx = gather_indices(matrix)
    conservative = mask.copy()
    conservative[0, 0] = True  # row 0,0 is all-zero by construction
    ref = gather_matmul_batch(cols, matrix.values, idx, out_dtype)
    out = gather_matmul_batch_masked(
        cols, matrix.values, idx, out_dtype, row_mask=conservative
    )
    assert np.array_equal(out, ref)
