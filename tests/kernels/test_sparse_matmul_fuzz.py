"""Gather-vs-dense equivalence fuzzing for the sparse matmul core.

The two execution methods of :func:`repro.kernels.conv_sparse.
sparse_matmul_acc` (index-by-index decimation vs scatter-to-dense BLAS)
must be **bit-identical** on every input — including the degenerate
shapes the engine can produce: empty batches (``P == 0``), all-zero
rows, underfull blocks, K smaller/larger than the chunking constant,
and odd row counts.  The batched variant must match the per-sample one
slice by slice, with and without precomputed gather indices.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.conv_sparse import (
    K_CHUNK_ENV,
    gather_indices,
    k_chunk,
    set_k_chunk,
    sparse_matmul_acc,
    sparse_matmul_acc_batch,
    sparse_matmul_f32,
    sparse_matmul_f32_batch,
)
from repro.sparsity.nm import (
    FORMAT_1_16,
    FORMAT_1_4,
    FORMAT_1_8,
    NMSparseMatrix,
    SUPPORTED_FORMATS,
)
from repro.sparsity.pruning import nm_prune

FORMATS = (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)


def random_sparse(rng, rows, blocks, fmt, zero_rows=0):
    """A random N:M matrix with ``zero_rows`` all-zero rows."""
    dense = rng.integers(-128, 128, size=(rows, blocks * fmt.m)).astype(np.int8)
    dense = nm_prune(dense, fmt)
    if zero_rows:
        dense[:zero_rows] = 0
    return NMSparseMatrix.from_dense(dense, fmt), dense


class TestGatherVsDense:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize(
        "rows,blocks,p",
        [
            (1, 1, 1),  # minimal
            (7, 3, 5),  # odd everything
            (33, 2, 4),  # rows straddle the K chunk boundary
            (64, 5, 9),  # two full chunks
            (6, 4, 0),  # empty activation set (P == 0)
        ],
    )
    def test_bit_identical(self, fmt, rows, blocks, p):
        rng = np.random.default_rng(rows * 31 + blocks * 7 + p)
        sparse_w, dense = random_sparse(rng, rows, blocks, fmt, zero_rows=1)
        cols = rng.integers(-128, 128, size=(p, dense.shape[1])).astype(np.int8)
        got = sparse_matmul_acc(cols, sparse_w, "gather")
        want = sparse_matmul_acc(cols, sparse_w, "dense")
        assert got.dtype == want.dtype == np.int32
        assert np.array_equal(got, want)
        # ... and both equal the plain integer reference product.
        ref = cols.astype(np.int64) @ dense.astype(np.int64).T
        assert np.array_equal(got.astype(np.int64), ref)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_all_zero_matrix(self, fmt):
        rng = np.random.default_rng(0)
        dense = np.zeros((5, fmt.m * 2), dtype=np.int8)
        sparse_w = NMSparseMatrix.from_dense(dense, fmt)
        cols = rng.integers(-128, 128, size=(3, dense.shape[1])).astype(np.int8)
        for method in ("gather", "dense"):
            out = sparse_matmul_acc(cols, sparse_w, method)
            assert out.shape == (3, 5)
            assert not out.any()

    def test_unknown_method_rejected(self):
        sparse_w, dense = random_sparse(np.random.default_rng(1), 2, 1, FORMAT_1_4)
        cols = np.zeros((2, dense.shape[1]), np.int8)
        with pytest.raises(ValueError, match="unknown method"):
            sparse_matmul_acc(cols, sparse_w, "turbo")

    def test_shape_mismatch_rejected(self):
        sparse_w, _ = random_sparse(np.random.default_rng(2), 2, 2, FORMAT_1_4)
        with pytest.raises(ValueError, match="incompatible"):
            sparse_matmul_acc(np.zeros((3, 4), np.int8), sparse_w)
        with pytest.raises(ValueError, match="incompatible"):
            sparse_matmul_acc_batch(np.zeros((1, 3, 4), np.int8), sparse_w)


class TestBatchedVariant:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("b", [0, 1, 3])
    def test_matches_per_sample_slices(self, fmt, b):
        rng = np.random.default_rng(b + fmt.m)
        sparse_w, dense = random_sparse(rng, 9, 3, fmt, zero_rows=2)
        cols = rng.integers(-128, 128, size=(b, 6, dense.shape[1])).astype(np.int8)
        for method in ("gather", "dense"):
            batched = sparse_matmul_acc_batch(cols, sparse_w, method)
            assert batched.shape == (b, 6, 9)
            for i in range(b):
                assert np.array_equal(
                    batched[i], sparse_matmul_acc(cols[i], sparse_w, method)
                )

    def test_precomputed_gather_indices_equivalent(self):
        """Hoisting the block_starts + offsets computation out of the
        call path (what the plan compiler does) changes nothing."""
        rng = np.random.default_rng(5)
        sparse_w, dense = random_sparse(rng, 40, 4, FORMAT_1_8)
        idx = gather_indices(sparse_w)
        assert idx.shape == sparse_w.values.shape
        cols = rng.integers(-128, 128, size=(2, 7, dense.shape[1])).astype(np.int8)
        a = sparse_matmul_acc_batch(cols, sparse_w, "gather")
        b = sparse_matmul_acc_batch(cols, sparse_w, "gather", gather_idx=idx)
        assert np.array_equal(a, b)

    def test_gather_indices_address_the_im2col_buffer(self):
        """Index [k, j] must equal block(j) * M + offset(k, j)."""
        rng = np.random.default_rng(6)
        sparse_w, _ = random_sparse(rng, 4, 3, FORMAT_1_4)
        idx = gather_indices(sparse_w)
        for j in range(idx.shape[1]):
            block = j // sparse_w.fmt.n
            assert (
                idx[:, j] == block * sparse_w.fmt.m + sparse_w.offsets[:, j]
            ).all()


@settings(max_examples=60, deadline=None)
@given(
    fmt_name=st.sampled_from(sorted(SUPPORTED_FORMATS)),
    rows=st.integers(1, 40),
    blocks=st.integers(1, 6),
    p=st.integers(0, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_fuzz_gather_dense_batched_agree(fmt_name, rows, blocks, p, seed):
    """Property: gather == dense == batched slices, on random shapes."""
    fmt = SUPPORTED_FORMATS[fmt_name]
    rng = np.random.default_rng(seed)
    sparse_w, dense = random_sparse(rng, rows, blocks, fmt, zero_rows=rows % 3)
    cols = rng.integers(-128, 128, size=(p, dense.shape[1])).astype(np.int8)
    gather = sparse_matmul_acc(cols, sparse_w, "gather")
    scatter = sparse_matmul_acc(cols, sparse_w, "dense")
    assert np.array_equal(gather, scatter)
    batched = sparse_matmul_acc_batch(cols[None], sparse_w, "gather")
    assert np.array_equal(batched[0], gather)


def random_sparse_f32(rng, rows, blocks, fmt, zero_rows=0):
    """A random float32 N:M matrix with ``zero_rows`` all-zero rows."""
    dense = nm_prune(rng.normal(size=(rows, blocks * fmt.m)), fmt)
    if zero_rows:
        dense[:zero_rows] = 0
    dense = dense.astype(np.float32)
    return NMSparseMatrix.from_dense(dense, fmt, dtype=np.float32), dense


class TestFloatFlavour:
    """sparse_matmul_f32[_batch]: tolerance vs the dense reference."""

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("rows,blocks,p", [(1, 1, 1), (7, 3, 5), (33, 2, 4)])
    def test_gather_matches_dense_to_rounding(self, fmt, rows, blocks, p):
        rng = np.random.default_rng(rows * 13 + blocks + p)
        sparse_w, dense = random_sparse_f32(rng, rows, blocks, fmt, zero_rows=1)
        cols = rng.normal(size=(p, dense.shape[1])).astype(np.float32)
        got = sparse_matmul_f32(cols, sparse_w, "gather")
        want = sparse_matmul_f32(cols, sparse_w, "dense")
        assert got.dtype == want.dtype == np.float32
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)
        # The scatter path IS the dense float reference, bit for bit.
        ref = cols @ dense.T
        assert np.array_equal(want, ref)

    def test_batched_matches_per_sample_slices(self):
        rng = np.random.default_rng(9)
        sparse_w, dense = random_sparse_f32(rng, 9, 3, FORMAT_1_8, zero_rows=2)
        cols = rng.normal(size=(3, 6, dense.shape[1])).astype(np.float32)
        for method in ("gather", "dense"):
            batched = sparse_matmul_f32_batch(cols, sparse_w, method)
            for i in range(3):
                assert np.array_equal(
                    batched[i], sparse_matmul_f32(cols[i], sparse_w, method)
                )

    def test_dtype_flavours_guarded(self):
        rng = np.random.default_rng(10)
        f32_w, f32_dense = random_sparse_f32(rng, 4, 2, FORMAT_1_4)
        i8_w, i8_dense = random_sparse(rng, 4, 2, FORMAT_1_4)
        with pytest.raises(TypeError, match="float32"):
            sparse_matmul_acc_batch(
                np.zeros((1, 2, f32_dense.shape[1]), np.int8), f32_w
            )
        with pytest.raises(TypeError, match="int8"):
            sparse_matmul_f32_batch(
                np.zeros((1, 2, i8_dense.shape[1]), np.float32), i8_w
            )


class TestKChunkConfig:
    """The gather chunk size knob (REPRO_K_CHUNK / set_k_chunk)."""

    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        set_k_chunk(None)

    def test_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv(K_CHUNK_ENV, raising=False)
        # Isolate from any host-level autotune cache (advisory tier).
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "none.json"))
        assert k_chunk() == 32

    def test_tuning_cache_consulted_below_env(self, monkeypatch, tmp_path):
        from repro.kernels import tuning

        monkeypatch.delenv(K_CHUNK_ENV, raising=False)
        monkeypatch.setenv(tuning.TUNING_CACHE_ENV, str(tmp_path / "t.json"))
        tuning.save_k_chunk(24)
        assert k_chunk() == 24
        monkeypatch.setenv(K_CHUNK_ENV, "7")
        assert k_chunk() == 7  # env outranks the persisted winner
        set_k_chunk(3)
        assert k_chunk() == 3  # explicit override outranks both

    def test_env_var_read_per_call(self, monkeypatch):
        monkeypatch.setenv(K_CHUNK_ENV, "7")
        assert k_chunk() == 7

    def test_setter_overrides_env(self, monkeypatch):
        monkeypatch.setenv(K_CHUNK_ENV, "7")
        set_k_chunk(3)
        assert k_chunk() == 3
        set_k_chunk(None)
        assert k_chunk() == 7

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match=">= 1"):
            set_k_chunk(0)
        monkeypatch.setenv(K_CHUNK_ENV, "banana")
        with pytest.raises(ValueError, match="integer"):
            k_chunk()
        monkeypatch.setenv(K_CHUNK_ENV, "-2")
        with pytest.raises(ValueError, match=">= 1"):
            k_chunk()

    def test_bad_env_fails_at_sparse_compile_time(self, monkeypatch):
        """A broken REPRO_K_CHUNK must surface when a sparse plan is
        compiled (server registration / warm-up), not on the first
        inference request that hits a gather-bound layer."""
        from repro.engine import compile_plan
        from repro.engine.bench import resnet_style_graph

        monkeypatch.setenv(K_CHUNK_ENV, "banana")
        g = resnet_style_graph(fmt=FORMAT_1_8)
        with pytest.raises(ValueError, match="integer"):
            compile_plan(g, mode="float", sparse=True)
        # Dense plans never gather and stay compilable.
        compile_plan(g, mode="float")

    @pytest.mark.parametrize("chunk", [1, 3, 32, 1000])
    def test_results_bit_identical_across_chunk_sizes(self, chunk):
        """Chunking groups whole output channels, so any chunk size
        must reproduce the default's output bit for bit — in both
        numeric flavours."""
        rng = np.random.default_rng(chunk)
        i8_w, i8_dense = random_sparse(rng, 40, 3, FORMAT_1_8, zero_rows=1)
        f32_w, f32_dense = random_sparse_f32(rng, 40, 3, FORMAT_1_8)
        i8_cols = rng.integers(-128, 128, size=(2, 5, i8_dense.shape[1])).astype(np.int8)
        f32_cols = rng.normal(size=(2, 5, f32_dense.shape[1])).astype(np.float32)
        set_k_chunk(None)
        i8_ref = sparse_matmul_acc_batch(i8_cols, i8_w)
        f32_ref = sparse_matmul_f32_batch(f32_cols, f32_w)
        set_k_chunk(chunk)
        assert np.array_equal(sparse_matmul_acc_batch(i8_cols, i8_w), i8_ref)
        assert np.array_equal(sparse_matmul_f32_batch(f32_cols, f32_w), f32_ref)
