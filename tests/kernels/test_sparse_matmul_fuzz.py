"""Gather-vs-dense equivalence fuzzing for the sparse matmul core.

The two execution methods of :func:`repro.kernels.conv_sparse.
sparse_matmul_acc` (index-by-index decimation vs scatter-to-dense BLAS)
must be **bit-identical** on every input — including the degenerate
shapes the engine can produce: empty batches (``P == 0``), all-zero
rows, underfull blocks, K smaller/larger than the chunking constant,
and odd row counts.  The batched variant must match the per-sample one
slice by slice, with and without precomputed gather indices.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.conv_sparse import (
    gather_indices,
    sparse_matmul_acc,
    sparse_matmul_acc_batch,
)
from repro.sparsity.nm import (
    FORMAT_1_16,
    FORMAT_1_4,
    FORMAT_1_8,
    NMSparseMatrix,
    SUPPORTED_FORMATS,
)
from repro.sparsity.pruning import nm_prune

FORMATS = (FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)


def random_sparse(rng, rows, blocks, fmt, zero_rows=0):
    """A random N:M matrix with ``zero_rows`` all-zero rows."""
    dense = rng.integers(-128, 128, size=(rows, blocks * fmt.m)).astype(np.int8)
    dense = nm_prune(dense, fmt)
    if zero_rows:
        dense[:zero_rows] = 0
    return NMSparseMatrix.from_dense(dense, fmt), dense


class TestGatherVsDense:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize(
        "rows,blocks,p",
        [
            (1, 1, 1),  # minimal
            (7, 3, 5),  # odd everything
            (33, 2, 4),  # rows straddle the K chunk boundary
            (64, 5, 9),  # two full chunks
            (6, 4, 0),  # empty activation set (P == 0)
        ],
    )
    def test_bit_identical(self, fmt, rows, blocks, p):
        rng = np.random.default_rng(rows * 31 + blocks * 7 + p)
        sparse_w, dense = random_sparse(rng, rows, blocks, fmt, zero_rows=1)
        cols = rng.integers(-128, 128, size=(p, dense.shape[1])).astype(np.int8)
        got = sparse_matmul_acc(cols, sparse_w, "gather")
        want = sparse_matmul_acc(cols, sparse_w, "dense")
        assert got.dtype == want.dtype == np.int32
        assert np.array_equal(got, want)
        # ... and both equal the plain integer reference product.
        ref = cols.astype(np.int64) @ dense.astype(np.int64).T
        assert np.array_equal(got.astype(np.int64), ref)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_all_zero_matrix(self, fmt):
        rng = np.random.default_rng(0)
        dense = np.zeros((5, fmt.m * 2), dtype=np.int8)
        sparse_w = NMSparseMatrix.from_dense(dense, fmt)
        cols = rng.integers(-128, 128, size=(3, dense.shape[1])).astype(np.int8)
        for method in ("gather", "dense"):
            out = sparse_matmul_acc(cols, sparse_w, method)
            assert out.shape == (3, 5)
            assert not out.any()

    def test_unknown_method_rejected(self):
        sparse_w, dense = random_sparse(np.random.default_rng(1), 2, 1, FORMAT_1_4)
        cols = np.zeros((2, dense.shape[1]), np.int8)
        with pytest.raises(ValueError, match="unknown method"):
            sparse_matmul_acc(cols, sparse_w, "turbo")

    def test_shape_mismatch_rejected(self):
        sparse_w, _ = random_sparse(np.random.default_rng(2), 2, 2, FORMAT_1_4)
        with pytest.raises(ValueError, match="incompatible"):
            sparse_matmul_acc(np.zeros((3, 4), np.int8), sparse_w)
        with pytest.raises(ValueError, match="incompatible"):
            sparse_matmul_acc_batch(np.zeros((1, 3, 4), np.int8), sparse_w)


class TestBatchedVariant:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("b", [0, 1, 3])
    def test_matches_per_sample_slices(self, fmt, b):
        rng = np.random.default_rng(b + fmt.m)
        sparse_w, dense = random_sparse(rng, 9, 3, fmt, zero_rows=2)
        cols = rng.integers(-128, 128, size=(b, 6, dense.shape[1])).astype(np.int8)
        for method in ("gather", "dense"):
            batched = sparse_matmul_acc_batch(cols, sparse_w, method)
            assert batched.shape == (b, 6, 9)
            for i in range(b):
                assert np.array_equal(
                    batched[i], sparse_matmul_acc(cols[i], sparse_w, method)
                )

    def test_precomputed_gather_indices_equivalent(self):
        """Hoisting the block_starts + offsets computation out of the
        call path (what the plan compiler does) changes nothing."""
        rng = np.random.default_rng(5)
        sparse_w, dense = random_sparse(rng, 40, 4, FORMAT_1_8)
        idx = gather_indices(sparse_w)
        assert idx.shape == sparse_w.values.shape
        cols = rng.integers(-128, 128, size=(2, 7, dense.shape[1])).astype(np.int8)
        a = sparse_matmul_acc_batch(cols, sparse_w, "gather")
        b = sparse_matmul_acc_batch(cols, sparse_w, "gather", gather_idx=idx)
        assert np.array_equal(a, b)

    def test_gather_indices_address_the_im2col_buffer(self):
        """Index [k, j] must equal block(j) * M + offset(k, j)."""
        rng = np.random.default_rng(6)
        sparse_w, _ = random_sparse(rng, 4, 3, FORMAT_1_4)
        idx = gather_indices(sparse_w)
        for j in range(idx.shape[1]):
            block = j // sparse_w.fmt.n
            assert (
                idx[:, j] == block * sparse_w.fmt.m + sparse_w.offsets[:, j]
            ).all()


@settings(max_examples=60, deadline=None)
@given(
    fmt_name=st.sampled_from(sorted(SUPPORTED_FORMATS)),
    rows=st.integers(1, 40),
    blocks=st.integers(1, 6),
    p=st.integers(0, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_fuzz_gather_dense_batched_agree(fmt_name, rows, blocks, p, seed):
    """Property: gather == dense == batched slices, on random shapes."""
    fmt = SUPPORTED_FORMATS[fmt_name]
    rng = np.random.default_rng(seed)
    sparse_w, dense = random_sparse(rng, rows, blocks, fmt, zero_rows=rows % 3)
    cols = rng.integers(-128, 128, size=(p, dense.shape[1])).astype(np.int8)
    gather = sparse_matmul_acc(cols, sparse_w, "gather")
    scatter = sparse_matmul_acc(cols, sparse_w, "dense")
    assert np.array_equal(gather, scatter)
    batched = sparse_matmul_acc_batch(cols[None], sparse_w, "gather")
    assert np.array_equal(batched[0], gather)
