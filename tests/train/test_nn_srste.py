"""Tests for layers, optimiser and SR-STE training (repro.train)."""

import numpy as np
import pytest

from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8
from repro.sparsity.stats import is_nm_sparse
from repro.train.autograd import Tensor
from repro.train.data import make_synthetic_dataset
from repro.train.nn import (
    AvgPool2x2,
    Conv2d,
    Flatten,
    Linear,
    ReLU,
    SGD,
    Sequential,
    cross_entropy,
)
from repro.train.srste import SparseConv2d, SparseLinear, srste_mask
from repro.train.trainer import evaluate, train_model


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(8, 3, seed=0)
        out = layer(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 3)

    def test_conv_matches_manual_center_tap(self):
        conv = Conv2d(1, 1, seed=0)
        conv.weight.data[:] = 0
        conv.weight.data[0, 1, 1, 0] = 3.0
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = conv(Tensor(x)).data
        assert np.allclose(out, 3 * x)

    def test_conv_output_shape(self):
        conv = Conv2d(3, 6, seed=1)
        out = conv(Tensor(np.zeros((2, 8, 8, 3))))
        assert out.shape == (2, 8, 8, 6)

    def test_sequential_parameters(self):
        model = Sequential(Linear(4, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
        assert len(model.parameters()) == 4  # 2 weights + 2 biases

    def test_pool_flatten(self):
        model = Sequential(AvgPool2x2(), Flatten())
        out = model(Tensor(np.zeros((2, 4, 4, 3))))
        assert out.shape == (2, 12)


class TestLoss:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) == pytest.approx(np.log(4))

    def test_cross_entropy_confident(self):
        x = np.full((1, 3), -10.0)
        x[0, 2] = 10.0
        loss = cross_entropy(Tensor(x), np.array([2]))
        assert float(loss.data) < 1e-6

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0  # push the true class up
        assert logits.grad[0, 0] > 0


class TestSgd:
    def test_step_descends(self):
        w = Tensor(np.array([2.0]), requires_grad=True)
        opt = SGD([w], lr=0.1, momentum=0.0)
        for _ in range(20):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(float(w.data[0])) < 0.1

    def test_momentum_accumulates(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([w], lr=0.01, momentum=0.9)
        (w * w).sum().backward()
        opt.step()
        first = float(w.data[0])
        opt.zero_grad()
        (w * w).sum().backward()
        opt.step()
        second_delta = first - float(w.data[0])
        assert second_delta > (1.0 - first)  # larger than the first step


class TestSrSte:
    def test_mask_applied_forward(self):
        w = Tensor(np.arange(1.0, 9.0)[None, :], requires_grad=True)
        out = srste_mask(w, FORMAT_1_4)
        assert (out.data != 0).sum() == 2  # 1 per 4-block

    def test_gradient_passes_to_pruned_weights(self):
        """The STE lets masked-out weights receive gradient signal."""
        w = Tensor(np.arange(1.0, 9.0)[None, :], requires_grad=True)
        srste_mask(w, FORMAT_1_4, lambda_w=0.0).sum().backward()
        assert (w.grad != 0).all()

    def test_regulariser_decays_pruned_only(self):
        w = Tensor(np.arange(1.0, 9.0)[None, :], requires_grad=True)
        lam = 0.5
        srste_mask(w, FORMAT_1_4, lambda_w=lam).sum().backward()
        # pruned positions: grad = 1 (STE) + lam * w
        pruned = np.ones((1, 8), dtype=bool)
        pruned[0, 3] = pruned[0, 7] = False  # kept (largest per block)
        assert np.allclose(w.grad[pruned], 1.0 + lam * w.data[pruned])
        assert np.allclose(w.grad[~pruned], 1.0)

    def test_sparse_linear_rejects_misaligned(self):
        with pytest.raises(ValueError, match="multiple"):
            SparseLinear(10, 4, FORMAT_1_4)

    def test_sparse_conv_rejects_misaligned(self):
        with pytest.raises(ValueError, match="multiple"):
            SparseConv2d(3, 4, FORMAT_1_8)

    @pytest.mark.parametrize("fmt", [FORMAT_1_4, FORMAT_1_8, FORMAT_1_16])
    def test_dense_weight_is_compliant(self, fmt):
        layer = SparseLinear(4 * fmt.m, 6, fmt, seed=0)
        w = layer.dense_weight()
        assert is_nm_sparse(w, fmt)


class TestTraining:
    def test_mlp_learns_synthetic(self):
        data = make_synthetic_dataset(
            n_classes=4, n_train=128, n_test=64, hw=8, noise=0.5, seed=0
        )
        model = Sequential(
            Flatten(), Linear(8 * 8 * 3, 32, seed=0), ReLU(), Linear(32, 4, seed=1)
        )
        result = train_model(model, data, epochs=6, seed=0)
        assert result.test_accuracy > 0.7
        assert result.train_losses[-1] < result.train_losses[0]

    def test_sparse_mlp_stays_compliant_after_training(self):
        data = make_synthetic_dataset(
            n_classes=4, n_train=128, n_test=64, hw=8, noise=0.5, seed=1
        )
        layer = SparseLinear(8 * 8 * 3, 32, FORMAT_1_8, seed=0)
        model = Sequential(Flatten(), layer, ReLU(), Linear(32, 4, seed=1))
        result = train_model(model, data, epochs=4, seed=0)
        assert result.test_accuracy > 0.6
        assert is_nm_sparse(layer.dense_weight(), FORMAT_1_8)

    def test_evaluate_bounds(self):
        data = make_synthetic_dataset(
            n_classes=4, n_train=32, n_test=32, hw=8, seed=2
        )
        model = Sequential(Flatten(), Linear(8 * 8 * 3, 4, seed=0))
        acc = evaluate(model, data.x_test, data.y_test)
        assert 0.0 <= acc <= 1.0


class TestData:
    def test_deterministic(self):
        a = make_synthetic_dataset(seed=9)
        b = make_synthetic_dataset(seed=9)
        assert (a.x_train == b.x_train).all()
        assert (a.y_test == b.y_test).all()

    def test_shapes_and_labels(self):
        data = make_synthetic_dataset(n_classes=5, n_train=20, n_test=10, hw=12)
        assert data.x_train.shape == (20, 12, 12, 3)
        assert data.n_classes == 5
        assert set(np.unique(data.y_train)) <= set(range(5))

    def test_noise_controls_difficulty(self):
        easy = make_synthetic_dataset(noise=0.1, seed=3)
        hard = make_synthetic_dataset(noise=3.0, seed=3)
        # Same prototypes, different corruption level.
        assert hard.x_train.std() > easy.x_train.std()
