"""Tests for the autodiff core (repro.train.autograd): every gradient
is checked against central finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.train.autograd import Tensor


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_op(build, shape, seed=0, tol=1e-5):
    """Compare autodiff gradients to finite differences for one op."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)

    def scalar(arr):
        t = Tensor(arr.copy(), requires_grad=True)
        return float(build(t).data)

    t = Tensor(x.copy(), requires_grad=True)
    loss = build(t)
    loss.backward()
    num = numeric_grad(scalar, x.copy())
    assert np.allclose(t.grad, num, atol=tol), (t.grad, num)


class TestGradients:
    def test_add(self):
        check_op(lambda t: (t + Tensor(np.ones(t.shape))).sum(), (3, 4))

    def test_mul(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(3, 4)))
        check_op(lambda t: (t * other).sum(), (3, 4))

    def test_broadcast_add(self):
        bias = Tensor(np.arange(4.0))
        check_op(lambda t: (t + bias).sum(), (3, 4))

    def test_matmul(self):
        rng = np.random.default_rng(2)
        w = Tensor(rng.normal(size=(4, 5)))
        check_op(lambda t: t.matmul(w).sum(), (3, 4))

    def test_batched_matmul(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(4, 5)))
        check_op(lambda t: t.matmul(w).sum(), (2, 3, 4))

    def test_matmul_weight_grad(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 3, 4)))

        def build(w):
            return x.matmul(w).sum()

        def scalar(arr):
            return float(x.matmul(Tensor(arr.copy())).sum().data)

        w0 = rng.normal(size=(4, 5))
        w = Tensor(w0.copy(), requires_grad=True)
        build(w).backward()
        num = numeric_grad(lambda a: scalar(a), w0.copy())
        assert np.allclose(w.grad, num, atol=1e-5)

    def test_relu(self):
        check_op(lambda t: t.relu().sum(), (5, 5), seed=5)

    def test_reshape(self):
        check_op(lambda t: t.reshape(2, 6).sum(), (3, 4))

    def test_transpose(self):
        check_op(lambda t: t.transpose((1, 0)).sum(), (3, 4))

    def test_mean(self):
        check_op(lambda t: t.mean(), (4, 4))

    def test_avgpool(self):
        check_op(lambda t: t.avgpool2x2().sum(), (1, 4, 4, 2))

    def test_log_softmax(self):
        rng = np.random.default_rng(6)
        pick = Tensor(rng.normal(size=(3, 5)))
        check_op(lambda t: (t.log_softmax() * pick).sum(), (3, 5))

    def test_pad(self):
        check_op(lambda t: t.pad_hw(1).sum(), (1, 3, 3, 2))

    def test_im2col_conv(self):
        idx = np.array([[0, 1], [2, 3]])
        check_op(lambda t: t.im2col_conv(idx, None).sum(), (2, 4))


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (t + t).backward()

    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t + t).sum().backward()
        assert np.allclose(t.grad, 2.0)

    def test_no_tape_without_requires_grad(self):
        t = Tensor(np.ones(3))
        out = t.relu()
        assert out._backward is None

    def test_matmul_rejects_batched_rhs(self):
        a = Tensor(np.zeros((2, 3)))
        b = Tensor(np.zeros((2, 3, 4)))
        with pytest.raises(ValueError, match="2-D"):
            a.matmul(b)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
def test_chain_gradient_property(rows, cols, seed):
    """relu(xW) summed: autodiff equals finite differences for random
    shapes and values."""
    rng = np.random.default_rng(seed)
    w = Tensor(rng.normal(size=(cols, 3)))
    x0 = rng.normal(size=(rows, cols))

    def scalar(arr):
        return float(Tensor(arr.copy()).matmul(w).relu().sum().data)

    t = Tensor(x0.copy(), requires_grad=True)
    t.matmul(w).relu().sum().backward()
    num = numeric_grad(lambda a: scalar(a), x0.copy())
    assert np.allclose(t.grad, num, atol=1e-5)
