"""Tests for the ResNet18 model builder (repro.models.resnet)."""

import numpy as np
import pytest

from repro.compiler.executor import execute_graph
from repro.compiler.patterns import annotate_sparsity
from repro.models.resnet import resnet18_cifar
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_8
from repro.sparsity.stats import is_nm_sparse


class TestStructure:
    def test_parameter_count_matches_paper(self):
        """Table 2: dense ResNet18 memory 11.22 MB (int8 params)."""
        g = resnet18_cifar()
        params = sum(
            n.attrs["weights"].size for n in g if "weights" in n.attrs
        )
        assert params / (1024 * 1024) == pytest.approx(11.22, rel=0.05)

    def test_mac_count_matches_paper(self):
        """Dense MACs implied by Table 2: 66.63 Mcyc x 8.33 MAC/cyc ~= 555M."""
        from repro.compiler.deploy import deploy

        report = deploy(resnet18_cifar())
        assert report.total_macs / 1e6 == pytest.approx(555, rel=0.03)

    def test_head_width(self):
        g = resnet18_cifar(num_classes=100)
        assert g.node("head").attrs["weights"].shape == (100, 512)

    def test_stage_shapes(self):
        g = resnet18_cifar()
        assert g.node("s0b0_conv1").out_shape == (32, 32, 64)
        assert g.node("s1b0_conv1").out_shape == (16, 16, 128)
        assert g.node("s3b1_conv2").out_shape == (4, 4, 512)

    def test_downsample_present_at_transitions(self):
        g = resnet18_cifar()
        for stage in (1, 2, 3):
            assert f"s{stage}b0_down" in g.nodes
        assert "s0b0_down" not in g.nodes

    def test_deterministic(self):
        a = resnet18_cifar(seed=5)
        b = resnet18_cifar(seed=5)
        wa = a.node("s2b1_conv1").attrs["weights"]
        wb = b.node("s2b1_conv1").attrs["weights"]
        assert (wa == wb).all()


class TestSparsity:
    def test_3x3_convs_pruned(self):
        g = resnet18_cifar(fmt=FORMAT_1_8)
        w = g.node("s1b0_conv1").attrs["weights"]
        assert is_nm_sparse(w.reshape(w.shape[0], -1), FORMAT_1_8)

    def test_stem_stays_dense(self):
        """C=3 gives reduce dim 27 — no supported pattern fits."""
        g = resnet18_cifar(fmt=FORMAT_1_8)
        w = g.node("stem").attrs["weights"]
        assert (w != 0).mean() > 0.5

    def test_downsample_stays_dense(self):
        g = resnet18_cifar(fmt=FORMAT_1_16)
        w = g.node("s1b0_down").attrs["weights"]
        assert (w != 0).mean() > 0.5

    def test_pattern_matcher_finds_the_format(self):
        g = resnet18_cifar(fmt=FORMAT_1_16)
        annotate_sparsity(g)
        assert g.node("s2b0_conv2").attrs["sparse_fmt"] == FORMAT_1_16
        assert g.node("s1b0_down").attrs["sparse_fmt"] is None

    def test_pruned_param_share(self):
        """Sec. 5.3: sparsified convs carry ~97% of parameters."""
        g = resnet18_cifar(fmt=FORMAT_1_8)
        annotate_sparsity(g)
        pruned = total = 0
        for n in g:
            w = n.attrs.get("weights")
            if w is None:
                continue
            total += w.size
            if n.attrs.get("sparse_fmt") is not None:
                pruned += w.size
        assert pruned / total > 0.95


class TestForward:
    def test_forward_runs(self):
        g = resnet18_cifar(num_classes=10)
        rng = np.random.default_rng(0)
        out = execute_graph(g, rng.normal(size=(32, 32, 3)).astype(np.float32))
        assert out.shape == (10,)
        assert np.isfinite(out).all()
