"""Tests for the ViT-Small model builder (repro.models.vit)."""

import numpy as np
import pytest

from repro.compiler.deploy import deploy
from repro.compiler.executor import execute_graph
from repro.compiler.patterns import annotate_sparsity
from repro.models.vit import vit_small
from repro.sparsity.nm import FORMAT_1_8
from repro.sparsity.stats import is_nm_sparse


class TestStructure:
    def test_parameter_count_matches_paper(self):
        """Table 2: dense ViT memory 21.59 MB (int8 params)."""
        g = vit_small()
        params = 0
        for n in g:
            for key in ("weights", "wq", "wk", "wv", "wo"):
                if key in n.attrs:
                    params += n.attrs[key].size
        assert params / (1024 * 1024) == pytest.approx(21.59, rel=0.06)

    def test_mac_count_matches_paper(self):
        """Dense MACs implied by Table 2: 975.23 x 4.65 ~= 4.53G."""
        report = deploy(vit_small())
        assert report.total_macs / 1e9 == pytest.approx(4.53, rel=0.05)

    def test_ffn_param_share(self):
        """Sec. 5.3: the sparsified FC layers hold ~65% of parameters."""
        g = vit_small()
        ffn = total = 0
        for n in g:
            for key in ("weights", "wq", "wk", "wv", "wo"):
                if key in n.attrs:
                    total += n.attrs[key].size
            if n.op == "dense" and "_fc" in n.name:
                ffn += n.attrs["weights"].size
        assert ffn / total == pytest.approx(0.65, abs=0.03)

    def test_token_count(self):
        g = vit_small()
        assert g.node("to_tokens").out_shape == (196, 384)

    def test_depth_override(self):
        g = vit_small(depth=2)
        assert "l1_attn" in g.nodes and "l2_attn" not in g.nodes


class TestSparsity:
    def test_only_ffn_sparsified(self):
        g = vit_small(fmt=FORMAT_1_8, depth=2)
        annotate_sparsity(g)
        assert g.node("l0_fc1").attrs["sparse_fmt"] == FORMAT_1_8
        assert g.node("l0_fc2").attrs["sparse_fmt"] == FORMAT_1_8
        assert g.node("head").attrs["sparse_fmt"] is None

    def test_ffn_weights_compliant(self):
        g = vit_small(fmt=FORMAT_1_8, depth=1)
        w = g.node("l0_fc1").attrs["weights"]
        assert is_nm_sparse(w, FORMAT_1_8)

    def test_attention_untouched(self):
        g = vit_small(fmt=FORMAT_1_8, depth=1)
        wq = g.node("l0_attn").attrs["wq"]
        assert (wq != 0).mean() > 0.5


class TestForward:
    def test_forward_runs_shallow(self):
        g = vit_small(num_classes=10, depth=1)
        rng = np.random.default_rng(0)
        out = execute_graph(g, rng.normal(size=(224, 224, 3)).astype(np.float32))
        assert out.shape == (10,)
        assert np.isfinite(out).all()
