"""Tests for per-stage mixed sparsity (repro.models.resnet_cifar_mixed
and its deployment through the compiler)."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import deploy
from repro.compiler.patterns import annotate_sparsity
from repro.models.resnet import resnet18_cifar, resnet18_cifar_mixed
from repro.sparsity.nm import FORMAT_1_16, FORMAT_1_4, FORMAT_1_8
from repro.sparsity.stats import is_nm_sparse

SCHEDULE = (None, FORMAT_1_4, FORMAT_1_8, FORMAT_1_16)


class TestBuilder:
    def test_needs_four_formats(self):
        with pytest.raises(ValueError, match="4 stage"):
            resnet18_cifar_mixed((FORMAT_1_4, FORMAT_1_8))

    def test_stage_formats_applied(self):
        g = resnet18_cifar_mixed(SCHEDULE)
        w0 = g.node("s0b0_conv1").attrs["weights"]
        assert (w0 != 0).mean() > 0.5  # stage 0 dense
        for stage, fmt in ((1, FORMAT_1_4), (2, FORMAT_1_8), (3, FORMAT_1_16)):
            w = g.node(f"s{stage}b1_conv2").attrs["weights"]
            assert is_nm_sparse(w.reshape(w.shape[0], -1), fmt)

    def test_pattern_matcher_resolves_per_layer(self):
        g = resnet18_cifar_mixed(SCHEDULE)
        annotate_sparsity(g)
        assert g.node("s0b0_conv1").attrs["sparse_fmt"] is None
        assert g.node("s1b1_conv1").attrs["sparse_fmt"] == FORMAT_1_4
        assert g.node("s3b0_conv2").attrs["sparse_fmt"] == FORMAT_1_16

    def test_graph_name_encodes_schedule(self):
        g = resnet18_cifar_mixed(SCHEDULE)
        assert "dense/1:4/1:8/1:16" in g.name


class TestDeployment:
    def test_mixed_lowered_with_per_layer_kernels(self):
        g = resnet18_cifar_mixed(SCHEDULE)
        report = deploy(g, CompileConfig(use_isa=True))
        fmts = {
            p.node_name: p.fmt.name if p.fmt else None
            for p in report.plans
            if p.kind == "conv"
        }
        assert fmts["s1b1_conv1"] == "1:4"
        assert fmts["s3b1_conv2"] == "1:16"
        assert fmts["s0b0_conv1"] is None

    def test_mixed_between_uniform_extremes(self):
        """A mixed schedule's latency and memory sit between the
        uniform schedules of its lightest and heaviest formats."""
        cfg = CompileConfig(use_isa=True)
        mixed = deploy(resnet18_cifar_mixed(SCHEDULE), cfg)
        light = deploy(resnet18_cifar(fmt=FORMAT_1_4), cfg)
        heavy = deploy(resnet18_cifar(fmt=FORMAT_1_16), cfg)
        assert heavy.total_cycles < mixed.total_cycles < deploy(
            resnet18_cifar(), CompileConfig(use_sparse=False)
        ).total_cycles
        assert heavy.weight_memory_bytes < mixed.weight_memory_bytes
        assert mixed.weight_memory_bytes < light.weight_memory_bytes

    def test_forward_pass_runs(self):
        from repro.compiler.executor import execute_graph

        g = resnet18_cifar_mixed(SCHEDULE, num_classes=10)
        out = execute_graph(
            g, np.random.default_rng(0).normal(size=(32, 32, 3)).astype(np.float32)
        )
        assert out.shape == (10,)
