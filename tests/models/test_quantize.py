"""Tests for int8 post-training quantisation (repro.models.quantize)."""

import numpy as np
import pytest

from repro.compiler.ir import Graph
from repro.compiler.patterns import annotate_sparsity
from repro.models.quantize import calibrate_scales, quantize_graph
from repro.sparsity.nm import FORMAT_1_8
from repro.sparsity.pruning import nm_prune
from repro.sparsity.stats import is_nm_sparse


def small_graph(seed=0, sparse=False):
    rng = np.random.default_rng(seed)
    g = Graph()
    x = g.add_input("in", (4, 4, 8))
    w = rng.normal(size=(4, 3, 3, 8))
    if sparse:
        w = nm_prune(w.reshape(4, -1), FORMAT_1_8).reshape(4, 3, 3, 8)
    x = g.add_conv2d("conv", x, w.astype(np.float32))
    x = g.add_global_avgpool("pool", x)
    g.add_dense("fc", x, rng.normal(size=(3, 4)).astype(np.float32))
    return g


def samples(n=3, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(4, 4, 8)) for _ in range(n)]


class TestCalibration:
    def test_scales_for_every_compute_node(self):
        g = small_graph()
        scales = calibrate_scales(g, samples())
        assert set(scales) == {"conv", "fc"}
        assert all(s > 0 for s in scales.values())

    def test_needs_samples(self):
        with pytest.raises(ValueError, match="at least one"):
            calibrate_scales(small_graph(), [])

    def test_scale_tracks_peak(self):
        g = small_graph()
        big = [np.full((4, 4, 8), 10.0)]
        small = [np.full((4, 4, 8), 0.1)]
        assert calibrate_scales(g, big)["conv"] > calibrate_scales(g, small)["conv"]


class TestQuantize:
    def test_metadata_attached(self):
        g = quantize_graph(small_graph(), samples())
        node = g.node("conv")
        assert node.attrs["weights_q"].dtype == np.int8
        assert node.attrs["w_scale"] > 0
        assert node.attrs["act_scale"] > 0

    def test_weights_q_roundtrip_error_bounded(self):
        g = quantize_graph(small_graph(), samples())
        node = g.node("conv")
        w = node.attrs["weights"]
        wq = node.attrs["weights_q"].astype(np.float64) * node.attrs["w_scale"]
        assert np.abs(w - wq).max() <= node.attrs["w_scale"] / 2 + 1e-9

    def test_sparsity_pattern_survives(self):
        """Sec. 5.1: quantisation after pruning keeps N:M compliance."""
        g = quantize_graph(small_graph(sparse=True), samples())
        wq = g.node("conv").attrs["weights_q"]
        assert is_nm_sparse(wq.reshape(wq.shape[0], -1), FORMAT_1_8)

    def test_pattern_matcher_sees_quantized(self):
        g = quantize_graph(small_graph(sparse=True), samples())
        annotate_sparsity(g)
        assert g.node("conv").attrs["sparse_fmt"] == FORMAT_1_8
