"""Cross-package integration tests: the full pipeline end to end."""

import json

import numpy as np
import pytest

from repro.compiler.codegen import CompileConfig
from repro.compiler.deploy import deploy
from repro.compiler.executor import execute_graph
from repro.compiler.ir import Graph
from repro.models.quantize import quantize_graph
from repro.models.resnet import resnet18_cifar
from repro.models.vit import vit_small
from repro.sparsity.nm import FORMAT_1_8, NMSparseMatrix
from repro.sparsity.serialize import load_nm_weights, save_nm_weights
from repro.sparsity.stats import is_nm_sparse


class TestVitEndToEnd:
    """Shallow ViT: int8 inference + deployment on the same graph."""

    @pytest.fixture(scope="class")
    def graph(self):
        g = vit_small(num_classes=10, fmt=FORMAT_1_8, depth=1)
        rng = np.random.default_rng(0)
        samples = [rng.normal(size=(224, 224, 3)).astype(np.float32) * 0.5]
        quantize_graph(g, samples)
        return g

    def test_int8_inference_tracks_float(self, graph):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(224, 224, 3)).astype(np.float32) * 0.5
        f = execute_graph(graph, x, mode="float")
        q = execute_graph(graph, x, mode="int8")
        scale = np.abs(f).max() + 1e-9
        assert np.abs(f - q).max() / scale < 0.25

    def test_sparse_ffn_lowered(self, graph):
        report = deploy(graph, CompileConfig(use_isa=True))
        kernels = {p.node_name: p.variant for p in report.plans}
        assert kernels["l0_fc1"] == "sparse-isa"
        assert kernels["head"] == "dense"

    def test_attention_cycles_constant_across_variants(self, graph):
        """Only the FFN changes between SW and ISA deployments."""
        sw = deploy(graph, CompileConfig(use_isa=False))
        isa = deploy(graph, CompileConfig(use_isa=True))
        sw_attn = sum(p.cycles for p in sw.plans if p.op == "attention")
        isa_attn = sum(p.cycles for p in isa.plans if p.op == "attention")
        assert sw_attn == pytest.approx(isa_attn)
        assert isa.total_cycles < sw.total_cycles


class TestTrainedWeightsThroughDeployment:
    def test_sparse_training_weights_deployable(self):
        """SR-STE output -> NMSparseMatrix -> serialisation -> compiler."""
        from repro.train.srste import SparseLinear

        layer = SparseLinear(64, 16, FORMAT_1_8, seed=0)
        w = layer.dense_weight()
        assert is_nm_sparse(w, FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(
            np.clip(np.rint(w * 50), -127, 127).astype(np.int8), FORMAT_1_8
        )
        assert mat.fmt == FORMAT_1_8

    def test_serialise_reload_deploy(self, tmp_path):
        rng = np.random.default_rng(2)
        from repro.sparsity.pruning import nm_prune

        w = nm_prune(rng.integers(-128, 128, (16, 128)).astype(np.int8), FORMAT_1_8)
        mat = NMSparseMatrix.from_dense(w, FORMAT_1_8)
        save_nm_weights(tmp_path / "w.npz", {"fc": mat})
        loaded = load_nm_weights(tmp_path / "w.npz")["fc"]

        g = Graph("reloaded")
        x = g.add_input("in", (128,))
        g.add_dense("fc", x, loaded.to_dense().astype(np.float32))
        report = deploy(g, CompileConfig())
        plan = next(p for p in report.plans if p.node_name == "fc")
        assert plan.variant == "sparse-sw"
        assert plan.fmt == FORMAT_1_8


class TestReportJson:
    def test_roundtrips_through_json(self):
        report = deploy(resnet18_cifar(fmt=FORMAT_1_8), CompileConfig(use_isa=True))
        payload = json.loads(report.to_json())
        assert payload["summary"]["total_cycles"] == pytest.approx(
            report.total_cycles
        )
        layers = {l["name"]: l for l in payload["layers"]}
        assert layers["s2b0_conv1"]["kernel"] == "sparse-isa"
        assert layers["s2b0_conv1"]["format"] == "1:8"
        assert sum(l["cycles"] for l in payload["layers"]) == pytest.approx(
            report.total_cycles
        )

    def test_dense_rows_have_null_format(self):
        report = deploy(resnet18_cifar(), CompileConfig(use_sparse=False))
        payload = json.loads(report.to_json())
        assert all(l["format"] is None for l in payload["layers"])
